//! Per-thread event rings and the global collector.
//!
//! Each recording thread owns one ring for the process lifetime. The owner is
//! the only writer: it stores the four words of an [`Event`] into the slot at
//! `cursor % capacity` with relaxed stores, then publishes the slot with a
//! single release store of the incremented cursor. The collector acquires the
//! cursor and reads slots with relaxed loads — no CAS, no locks, and no
//! `unsafe` anywhere (slots are plain `AtomicU64` words, so a racing
//! overwrite during a non-quiescent drain can at worst yield a stale event,
//! never undefined behavior).
//!
//! Rings are flight recorders: when the owner laps the collector the oldest
//! events are overwritten and the collector reports them as `dropped`.

use std::cell::OnceCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::{Event, Trace, TraceEvent, TraceThread};

/// Default per-thread ring capacity in events (32 bytes per event).
pub(crate) const DEFAULT_CAPACITY: usize = 16 * 1024;

const WORDS: usize = 4;

/// Start-of-struct padding keeps each ring's hot cursor on its own cache
/// line relative to the registry `Vec` that holds the `Arc`s.
#[repr(align(128))]
pub(crate) struct Ring {
    tid: u32,
    name: String,
    capacity: u64,
    /// Total events ever written; only the owner stores it.
    cursor: AtomicU64,
    /// Collector bookmark: events before this sequence were already drained.
    drained: AtomicU64,
    /// `capacity * 4` words; slot `s` lives at `[(s % capacity) * 4 ..][..4]`.
    words: Box<[AtomicU64]>,
}

impl Ring {
    fn new(tid: u32, name: String, capacity: usize) -> Ring {
        let words = (0..capacity * WORDS).map(|_| AtomicU64::new(0)).collect();
        Ring {
            tid,
            name,
            capacity: capacity as u64,
            cursor: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            words,
        }
    }

    /// Owner-only: append one event.
    #[inline]
    fn push(&self, e: Event) {
        let seq = self.cursor.load(Ordering::Relaxed);
        let base = ((seq % self.capacity) as usize) * WORDS;
        self.words[base].store(e.tsc_ns, Ordering::Relaxed);
        self.words[base + 1].store(e.kind as u64, Ordering::Relaxed);
        self.words[base + 2].store(e.a, Ordering::Relaxed);
        self.words[base + 3].store(e.b, Ordering::Relaxed);
        // Publish the slot: pairs with the collector's acquire cursor load.
        self.cursor.store(seq + 1, Ordering::Release);
    }
}

// ---- registry ----------------------------------------------------------

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

/// Set the capacity used for rings allocated from now on. Existing rings
/// keep their size (the capacity is per-ring, frozen at allocation).
pub(crate) fn set_default_capacity(capacity: usize) {
    CAPACITY.store(capacity.clamp(16, 1 << 24), Ordering::Relaxed);
}

thread_local! {
    static LOCAL: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

fn register() -> Arc<Ring> {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let ring = Arc::new(Ring::new(tid, name, CAPACITY.load(Ordering::Relaxed)));
    rings()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&ring));
    ring
}

/// Record one event on the calling thread's ring (allocating and
/// registering the ring on first use).
#[inline]
pub(crate) fn record(kind: u32, a: u64, b: u64) {
    let tsc_ns = crate::now_ns();
    LOCAL.with(|cell| {
        cell.get_or_init(register)
            .push(Event { tsc_ns, kind, a, b });
    });
}

/// The capacity of the calling thread's ring (allocating it if needed).
/// Test support.
#[cfg(test)]
pub(crate) fn capacity_for_current_thread() -> usize {
    LOCAL.with(|cell| cell.get_or_init(register).capacity as usize)
}

// ---- collector ---------------------------------------------------------

/// Drain all rings: every event published since the previous drain, oldest
/// first per thread, plus how many were overwritten before we got to them.
pub(crate) fn drain_all() -> Trace {
    let rings = rings().lock().unwrap_or_else(|e| e.into_inner());
    let mut threads = Vec::with_capacity(rings.len());
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for ring in rings.iter() {
        // Acquire pairs with the owner's release store: every slot at
        // sequence < end is fully written.
        let end = ring.cursor.load(Ordering::Acquire);
        let start = ring.drained.load(Ordering::Relaxed);
        let available = end - start;
        let taken = available.min(ring.capacity);
        let ring_dropped = available - taken;
        threads.push(TraceThread {
            tid: ring.tid,
            name: ring.name.clone(),
            dropped: ring_dropped,
        });
        dropped += ring_dropped;
        for seq in (end - taken)..end {
            let base = ((seq % ring.capacity) as usize) * WORDS;
            let kind = ring.words[base + 1].load(Ordering::Relaxed) as u32;
            let (phase, kind_id) = crate::unpack(kind);
            let Some(phase) = phase else { continue };
            events.push(TraceEvent {
                tid: ring.tid,
                seq,
                ts_ns: ring.words[base].load(Ordering::Relaxed),
                phase,
                kind: kind_id,
                a: ring.words[base + 2].load(Ordering::Relaxed),
                b: ring.words[base + 3].load(Ordering::Relaxed),
            });
        }
        ring.drained.store(end, Ordering::Relaxed);
    }
    // Only the collector writes `drained`, and only under the registry
    // lock, so concurrent drains see a consistent hand-off.
    Trace {
        threads,
        events,
        dropped,
    }
}
