//! A continuous sampling profiler that samples the **live span stack**
//! instead of native backtraces.
//!
//! Every thread that opens spans maintains a fixed-depth current-span-stack
//! ([`SpanStack`]): [`crate::span`] pushes one packed frame, the guard's end
//! pops it. A dedicated sampler thread snapshots every registered stack at a
//! configurable rate and folds the samples into a weighted stack trie with
//! one shard per sampled thread. Because the frames *are* span-kind ids, a
//! sample is symbolized by construction — no frame-pointer walking, no
//! symbol tables, no `unsafe`.
//!
//! The design contract mirrors [`crate::metrics`]:
//!
//! - **Disabled path**: one relaxed atomic load and a branch per span
//!   (`MSF_PROFILE=hz` / [`set_enabled`], the same tri-state gate).
//! - **Enabled push/pop**: a seqlock-lite write on the owner's own stack —
//!   a handful of relaxed stores bracketed by two sequence-number stores,
//!   no lock, no CAS, no allocation (after the first push registers the
//!   stack). The sampler is the only reader; a read that races a push/pop
//!   observes an odd or changed sequence number and drops that sample
//!   (counted in `profile.dropped`) instead of recording a torn stack.
//! - **Merge-off-path**: the fold state lives behind a mutex touched only
//!   by the sampler tick and by start/stop/fetch — never by the threads
//!   being profiled.
//!
//! Frames pack the span kind (high 16 bits) with the span's first argument
//! (low 48 bits). The tag is dropped when folding into the trie — folded
//! frames are span-kind names — except for [`crate::SpanKind::Serve`]
//! frames, whose tag is the daemon's request id: samples landing under a
//! serve span are additionally retained per request id (bounded), so the
//! daemon can dump the sampled stacks of one slow request ([`take_request`]).

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::metrics::LazyCounter;
use crate::SpanKind;

/// Maximum tracked span depth per thread. Deeper spans still balance their
/// push/pop (depth keeps counting) but are not stored or sampled; nothing
/// in the portfolio nests anywhere near this deep.
pub const MAX_DEPTH: usize = 32;

static SAMPLES: LazyCounter = LazyCounter::new("profile.samples");
static DROPPED: LazyCounter = LazyCounter::new("profile.dropped");
static WAKEUPS: LazyCounter = LazyCounter::new("profile.wakeups");

// ---- enable gate (same tri-state idiom as tracing and metrics) ---------

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

/// Is span-stack maintenance enabled? Steady state: one relaxed load and a
/// branch. The first call lazily consults `MSF_PROFILE` (a sample rate in
/// Hz; `0`, `off`, or unset leave it off) and, when set, also starts the
/// sampler thread.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Resolve the enable state from `MSF_PROFILE` unless [`set_enabled`] or
/// [`start`] already decided it. A positive rate starts the sampler.
#[cold]
pub fn init_from_env() -> bool {
    if STATE.load(Ordering::Relaxed) == STATE_UNKNOWN {
        let hz = std::env::var("MSF_PROFILE")
            .ok()
            .and_then(|v| match v.trim() {
                "" | "0" | "off" | "false" => None,
                t => t.parse::<u64>().ok(),
            })
            .unwrap_or(0);
        if hz > 0 {
            let _ = start(hz);
        } else {
            set_enabled(false);
        }
    }
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Turn span-stack maintenance on or off. [`start`]/[`stop`] call this;
/// toggling it alone does not start or stop the sampler thread.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ---- per-thread span stacks --------------------------------------------

/// One thread's current-span-stack: a seqlock-lite fixed array of packed
/// frames. The owning thread is the only writer; the sampler is the only
/// reader. All cells are plain atomics, so a racing read is at worst stale
/// or torn (and the sequence check discards torn reads) — never UB.
#[repr(align(128))]
struct SpanStack {
    tid: u32,
    name: String,
    /// Odd while the owner is mutating; bumped twice per push/pop.
    seq: AtomicU64,
    /// Current depth; may exceed [`MAX_DEPTH`] (excess frames unstored).
    depth: AtomicU64,
    /// `frames[0..depth]`: `(kind as u64) << 48 | (tag & 0xffff_ffff_ffff)`.
    frames: [AtomicU64; MAX_DEPTH],
}

const TAG_BITS: u64 = 48;
const TAG_MASK: u64 = (1 << TAG_BITS) - 1;

#[inline]
fn pack_frame(kind: SpanKind, tag: u64) -> u64 {
    ((kind as u64) << TAG_BITS) | (tag & TAG_MASK)
}

#[inline]
fn frame_kind(frame: u64) -> u16 {
    (frame >> TAG_BITS) as u16
}

#[inline]
fn frame_tag(frame: u64) -> u64 {
    frame & TAG_MASK
}

impl SpanStack {
    fn new(tid: u32, name: String) -> SpanStack {
        SpanStack {
            tid,
            name,
            seq: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            frames: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Owner-only: push one frame. The crossbeam seqlock write protocol:
    /// odd sequence (relaxed) + release fence before the data stores, then
    /// an even release store publishing them.
    #[inline]
    fn push(&self, frame: u64) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let d = self.depth.load(Ordering::Relaxed);
        if (d as usize) < MAX_DEPTH {
            self.frames[d as usize].store(frame, Ordering::Relaxed);
        }
        self.depth.store(d + 1, Ordering::Relaxed);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Owner-only: pop one frame.
    #[inline]
    fn pop(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let d = self.depth.load(Ordering::Relaxed);
        self.depth.store(d.saturating_sub(1), Ordering::Relaxed);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Sampler-only: snapshot the stack into `out`. Returns `None` when the
    /// read raced a mutation (odd or changed sequence number).
    fn sample(&self, out: &mut Vec<u64>) -> Option<()> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return None;
        }
        let depth = (self.depth.load(Ordering::Relaxed) as usize).min(MAX_DEPTH);
        out.clear();
        for f in &self.frames[..depth] {
            out.push(f.load(Ordering::Relaxed));
        }
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) != s1 {
            return None;
        }
        Some(())
    }
}

fn stacks() -> &'static Mutex<Vec<Arc<SpanStack>>> {
    static STACKS: OnceLock<Mutex<Vec<Arc<SpanStack>>>> = OnceLock::new();
    STACKS.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<SpanStack>> = const { std::cell::OnceCell::new() };
}

fn register() -> Arc<SpanStack> {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let stack = Arc::new(SpanStack::new(tid, name));
    stacks()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&stack));
    stack
}

/// Pre-register the calling thread's span stack under its current OS thread
/// name. Pool workers and team threads call this at startup so their stacks
/// exist (and carry the pool names) before the first profiled span; any
/// other thread registers lazily on its first push.
pub fn register_current_thread() {
    LOCAL.with(|cell| {
        cell.get_or_init(register);
    });
}

/// Push one frame onto the calling thread's stack. Callers must have
/// checked [`enabled`] — [`crate::span`] does.
#[inline]
pub(crate) fn push(kind: SpanKind, tag: u64) {
    LOCAL.with(|cell| cell.get_or_init(register).push(pack_frame(kind, tag)));
}

/// Pop the calling thread's innermost frame.
#[inline]
pub(crate) fn pop() {
    LOCAL.with(|cell| {
        if let Some(stack) = cell.get() {
            stack.pop();
        }
    });
}

// ---- the fold state -----------------------------------------------------

/// One node of the weighted stack trie. Children are a linear vector —
/// fan-out is bounded by the span taxonomy, so a scan beats hashing.
#[derive(Debug, Clone, Default)]
struct TrieNode {
    kind: u16,
    /// Samples whose innermost stored frame is this node.
    count: u64,
    children: Vec<TrieNode>,
}

impl TrieNode {
    fn fold(&mut self, path: &[u16]) {
        let mut node = self;
        for &kind in path {
            let idx = match node.children.iter().position(|c| c.kind == kind) {
                Some(i) => i,
                None => {
                    node.children.push(TrieNode {
                        kind,
                        ..TrieNode::default()
                    });
                    node.children.len() - 1
                }
            };
            node = &mut node.children[idx];
        }
        node.count += 1;
    }

    fn collapse(&self, prefix: &mut Vec<u16>, out: &mut BTreeMap<Vec<u16>, u64>) {
        for child in &self.children {
            prefix.push(child.kind);
            if child.count > 0 {
                *out.entry(prefix.clone()).or_default() += child.count;
            }
            child.collapse(prefix, out);
            prefix.pop();
        }
    }
}

/// Per-sampled-thread shard of the fold.
#[derive(Debug, Clone, Default)]
struct Shard {
    name: String,
    samples: u64,
    root: TrieNode,
}

/// Bounded retention of samples per serve-request id.
const MAX_TRACKED_REQUESTS: usize = 128;
const MAX_PATHS_PER_REQUEST: usize = 64;

#[derive(Debug, Default)]
struct FoldState {
    hz: u64,
    started: Option<Instant>,
    wall_ns: u64,
    samples: u64,
    dropped: u64,
    wakeups: u64,
    /// Indexed by stack tid.
    shards: Vec<Shard>,
    /// Serve-request id → sampled stack paths under that request's span.
    requests: HashMap<u64, HashMap<Vec<u16>, u64>>,
}

impl FoldState {
    fn reset(&mut self, hz: u64) {
        *self = FoldState {
            hz,
            started: Some(Instant::now()),
            ..FoldState::default()
        };
    }

    fn fold_sample(&mut self, tid: u32, name: &str, frames: &[u64]) {
        self.samples += 1;
        let path: Vec<u16> = frames.iter().map(|&f| frame_kind(f)).collect();
        let shard_idx = tid as usize;
        if self.shards.len() <= shard_idx {
            self.shards.resize(shard_idx + 1, Shard::default());
        }
        let shard = &mut self.shards[shard_idx];
        if shard.name.is_empty() {
            shard.name = name.to_owned();
        }
        shard.samples += 1;
        shard.root.fold(&path);
        // Per-request attribution: the outermost serve frame keys retention.
        if let Some(serve) = frames
            .iter()
            .find(|&&f| frame_kind(f) == SpanKind::Serve as u16)
        {
            let id = frame_tag(*serve);
            let fresh = !self.requests.contains_key(&id);
            if !fresh || self.requests.len() < MAX_TRACKED_REQUESTS {
                let paths = self.requests.entry(id).or_default();
                if paths.len() < MAX_PATHS_PER_REQUEST || paths.contains_key(&path) {
                    *paths.entry(path).or_default() += 1;
                }
            }
        }
    }

    fn report(&self) -> ProfileReport {
        let mut paths = BTreeMap::new();
        for shard in &self.shards {
            shard.root.collapse(&mut Vec::new(), &mut paths);
        }
        let wall_ns = self.wall_ns
            + self
                .started
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0);
        let mut threads: Vec<(String, u64)> = self
            .shards
            .iter()
            .filter(|s| s.samples > 0)
            .map(|s| (s.name.clone(), s.samples))
            .collect();
        threads.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ProfileReport {
            hz: self.hz,
            samples: self.samples,
            dropped: self.dropped,
            wakeups: self.wakeups,
            wall_ns,
            threads,
            paths,
        }
    }
}

fn fold() -> &'static Mutex<FoldState> {
    static FOLD: OnceLock<Mutex<FoldState>> = OnceLock::new();
    FOLD.get_or_init(|| Mutex::new(FoldState::default()))
}

fn lock_fold() -> std::sync::MutexGuard<'static, FoldState> {
    fold().lock().unwrap_or_else(|e| e.into_inner())
}

// ---- the sampler thread -------------------------------------------------

struct Sampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

fn sampler() -> &'static Mutex<Option<Sampler>> {
    static SAMPLER: OnceLock<Mutex<Option<Sampler>>> = OnceLock::new();
    SAMPLER.get_or_init(|| Mutex::new(None))
}

static RUNNING: AtomicBool = AtomicBool::new(false);

/// Is a sampler thread currently running?
pub fn is_running() -> bool {
    RUNNING.load(Ordering::Relaxed)
}

/// Start profiling at `hz` samples per second (clamped to `[1, 10000]`):
/// reset the fold state, enable span-stack maintenance, and spawn the
/// sampler thread. Errors if a sampler is already running.
pub fn start(hz: u64) -> Result<(), String> {
    let mut guard = sampler().lock().unwrap_or_else(|e| e.into_inner());
    if guard.is_some() {
        return Err("profiler is already running".into());
    }
    let hz = hz.clamp(1, 10_000);
    lock_fold().reset(hz);
    set_enabled(true);
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("msf-profiler".into())
        .spawn(move || sampler_main(hz, &thread_stop))
        .map_err(|e| format!("cannot spawn the sampler thread: {e}"))?;
    RUNNING.store(true, Ordering::Relaxed);
    *guard = Some(Sampler { stop, handle });
    Ok(())
}

/// Stop profiling: disable the gate, join the sampler, and return the
/// final report. Idempotent — stopping an idle profiler returns whatever
/// the fold state last held.
pub fn stop() -> ProfileReport {
    let mut guard = sampler().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(s) = guard.take() {
        s.stop.store(true, Ordering::Relaxed);
        let _ = s.handle.join();
        RUNNING.store(false, Ordering::Relaxed);
    }
    set_enabled(false);
    let mut fold = lock_fold();
    if let Some(t) = fold.started.take() {
        fold.wall_ns += t.elapsed().as_nanos() as u64;
    }
    fold.requests.clear();
    fold.report()
}

/// Snapshot the current report without stopping the sampler (the daemon's
/// `profile fetch` op).
pub fn snapshot_report() -> ProfileReport {
    lock_fold().report()
}

/// Remove and return the sampled stacks retained for one serve-request id:
/// `(path of span-kind ids, samples)` pairs. `None` when the profiler is
/// not running or nothing was sampled under that request's serve span.
pub fn take_request(id: u64) -> Option<Vec<(Vec<u16>, u64)>> {
    if !is_running() {
        return None;
    }
    let paths = lock_fold().requests.remove(&id)?;
    let mut out: Vec<(Vec<u16>, u64)> = paths.into_iter().collect();
    out.sort();
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

fn sampler_main(hz: u64, stop: &AtomicBool) {
    let period_ns = 1_000_000_000 / hz;
    let start = Instant::now();
    let mut tick = 0u64;
    let mut frames: Vec<u64> = Vec::with_capacity(MAX_DEPTH);
    while !stop.load(Ordering::Relaxed) {
        tick += 1;
        // Absolute schedule: tick k fires at start + k·period, so oversleep
        // on one tick does not stretch the whole run's cadence.
        let next = Duration::from_nanos(period_ns.saturating_mul(tick));
        WAKEUPS.inc();
        {
            // Snapshot the registry (clone the Arcs) so stack reads happen
            // outside the registry lock.
            let registered: Vec<Arc<SpanStack>> =
                stacks().lock().unwrap_or_else(|e| e.into_inner()).clone();
            let mut fold = lock_fold();
            fold.wakeups += 1;
            for stack in &registered {
                match stack.sample(&mut frames) {
                    Some(()) if !frames.is_empty() => {
                        fold.fold_sample(stack.tid, &stack.name, &frames);
                        SAMPLES.inc();
                    }
                    Some(()) => {} // idle thread: no open spans, no sample
                    None => {
                        fold.dropped += 1;
                        DROPPED.inc();
                    }
                }
            }
        }
        let elapsed = start.elapsed();
        if next > elapsed {
            std::thread::sleep(next - elapsed);
        }
    }
}

// ---- the report and its exporters ---------------------------------------

/// One profile: sample-weighted span-stack paths plus sampler bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Configured sample rate.
    pub hz: u64,
    /// Non-empty stacks recorded.
    pub samples: u64,
    /// Samples discarded because the read raced a push/pop.
    pub dropped: u64,
    /// Sampler ticks.
    pub wakeups: u64,
    /// Wall nanoseconds the sampler was (or has been) running.
    pub wall_ns: u64,
    /// `(thread name, samples)` per sampled thread, most-sampled first.
    pub threads: Vec<(String, u64)>,
    /// `stack path (outermost first, span-kind ids) → samples`, merged
    /// across all per-thread shards. A `BTreeMap` keeps every export
    /// deterministic.
    paths: BTreeMap<Vec<u16>, u64>,
}

fn kind_name(kind: u16) -> String {
    SpanKind::from_u16(kind)
        .map(|k| k.name().to_owned())
        .unwrap_or_else(|| format!("kind-{kind}"))
}

/// Render one `(path, weight)` list as collapsed-stack lines. Shared by the
/// report exporter and the daemon's slow-request log.
pub fn render_folded(paths: &[(Vec<u16>, u64)]) -> String {
    let mut out = String::new();
    for (path, weight) in paths {
        let names: Vec<String> = path.iter().map(|&k| kind_name(k)).collect();
        let _ = writeln!(out, "{} {}", names.join(";"), weight);
    }
    out
}

impl ProfileReport {
    /// Total weighted samples across all paths.
    pub fn total_samples(&self) -> u64 {
        self.paths.values().sum()
    }

    /// Weighted samples whose stack contains `kind` (counted once per
    /// sample): the inclusive weight of a frame, the number a flamegraph
    /// shows for it. Divide by [`ProfileReport::hz`] for estimated seconds.
    pub fn inclusive_samples(&self, kind: SpanKind) -> u64 {
        self.paths
            .iter()
            .filter(|(path, _)| path.contains(&(kind as u16)))
            .map(|(_, w)| w)
            .sum()
    }

    /// Weighted samples whose *innermost* frame is `kind` — self time.
    pub fn self_samples(&self, kind: SpanKind) -> u64 {
        self.paths
            .iter()
            .filter(|(path, _)| path.last() == Some(&(kind as u16)))
            .map(|(_, w)| w)
            .sum()
    }

    /// Collapsed-stack (flamegraph.pl-compatible) export: one line per
    /// distinct stack, `frame;frame;frame weight`, deterministically
    /// ordered. Frame names are span-kind names.
    pub fn folded(&self) -> String {
        let paths: Vec<(Vec<u16>, u64)> = self.paths.iter().map(|(p, &w)| (p.clone(), w)).collect();
        render_folded(&paths)
    }

    /// A top-N table of frames by inclusive samples, with self samples and
    /// estimated wall seconds alongside.
    pub fn top(&self, n: usize) -> String {
        let mut kinds: Vec<u16> = Vec::new();
        for path in self.paths.keys() {
            for &k in path {
                if !kinds.contains(&k) {
                    kinds.push(k);
                }
            }
        }
        let mut rows: Vec<(u16, u64, u64)> = kinds
            .into_iter()
            .map(|k| {
                let kind = SpanKind::from_u16(k);
                let incl = match kind {
                    Some(kind) => self.inclusive_samples(kind),
                    None => 0,
                };
                let slf = match kind {
                    Some(kind) => self.self_samples(kind),
                    None => 0,
                };
                (k, incl, slf)
            })
            .collect();
        rows.sort_by_key(|&(k, incl, _)| (std::cmp::Reverse(incl), k));
        rows.truncate(n);
        let total = self.total_samples().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} samples at {} Hz over {:.3}s ({} dropped, {} wakeups)",
            self.samples,
            self.hz,
            self.wall_ns as f64 / 1e9,
            self.dropped,
            self.wakeups
        );
        if !self.threads.is_empty() {
            let list: Vec<String> = self
                .threads
                .iter()
                .map(|(name, n)| format!("{name} ({n})"))
                .collect();
            let _ = writeln!(out, "threads: {}", list.join(", "));
        }
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>7} {:>10} {:>10}",
            "frame", "inclusive", "%", "self", "est-secs"
        );
        for (k, incl, slf) in rows {
            let _ = writeln!(
                out,
                "{:<20} {:>10} {:>6.1}% {:>10} {:>10.3}",
                kind_name(k),
                incl,
                100.0 * incl as f64 / total as f64,
                slf,
                incl as f64 / self.hz.max(1) as f64
            );
        }
        out
    }

    /// The hottest frame by inclusive samples, if any sample was taken.
    pub fn hottest(&self) -> Option<SpanKind> {
        SpanKind::ALL
            .iter()
            .copied()
            .max_by_key(|&k| self.inclusive_samples(k))
            .filter(|&k| self.inclusive_samples(k) > 0)
    }

    /// Self-rendered SVG flamegraph (no external tooling): an icicle layout,
    /// root frames on top, rectangle width proportional to inclusive
    /// samples. Hover shows exact counts via `<title>`.
    pub fn svg(&self) -> String {
        const WIDTH: f64 = 1200.0;
        const ROW: f64 = 17.0;
        const PAD: f64 = 2.0;

        // Rebuild the trie from the merged paths so sibling order and
        // x-offsets are deterministic.
        let mut root = TrieNode::default();
        for (path, &w) in &self.paths {
            let mut node = &mut root;
            for &kind in path {
                let idx = match node.children.iter().position(|c| c.kind == kind) {
                    Some(i) => i,
                    None => {
                        node.children.push(TrieNode {
                            kind,
                            ..TrieNode::default()
                        });
                        node.children.len() - 1
                    }
                };
                node = &mut node.children[idx];
            }
            node.count += w;
        }
        fn inclusive(node: &TrieNode) -> u64 {
            node.count + node.children.iter().map(inclusive).sum::<u64>()
        }
        fn depth_of(node: &TrieNode) -> usize {
            1 + node.children.iter().map(depth_of).max().unwrap_or(0)
        }
        let total = inclusive(&root).max(1);
        let rows = depth_of(&root).max(2) - 1;
        let height = 40.0 + rows as f64 * ROW;

        let mut out = String::new();
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
             font-family=\"monospace\" font-size=\"11\">"
        );
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"16\" text-anchor=\"middle\">msf span-stack profile: {} samples \
             at {} Hz</text>",
            WIDTH / 2.0,
            self.samples,
            self.hz
        );
        // Fixed palette indexed by kind id: stable colors across runs.
        const PALETTE: [&str; 8] = [
            "#e4572e", "#f3a712", "#a8c686", "#669bbc", "#d1495b", "#9b5de5", "#f15bb5", "#00b4a0",
        ];
        fn color(kind: u16) -> &'static str {
            PALETTE[kind as usize % PALETTE.len()]
        }
        fn emit(
            out: &mut String,
            node: &TrieNode,
            x: f64,
            depth: usize,
            total: u64,
            hz: u64,
        ) -> f64 {
            let incl = inclusive(node);
            let w = WIDTH * incl as f64 / total as f64;
            if w < 0.3 {
                return w;
            }
            let y = 28.0 + depth as f64 * ROW;
            let name = kind_name(node.kind);
            let _ = writeln!(
                out,
                "<g><rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
                 fill=\"{}\" stroke=\"white\" stroke-width=\"0.5\"><title>{} — {} samples \
                 ({:.1}%, ~{:.3}s)</title></rect>",
                x,
                y,
                w,
                ROW - 1.0,
                color(node.kind),
                name,
                incl,
                100.0 * incl as f64 / total as f64,
                incl as f64 / hz.max(1) as f64
            );
            if w > 40.0 {
                let shown = name.chars().take((w / 7.0) as usize).collect::<String>();
                let _ = writeln!(
                    out,
                    "<text x=\"{:.2}\" y=\"{:.2}\" fill=\"#1a1a1a\">{shown}</text>",
                    x + PAD,
                    y + ROW - 5.0
                );
            }
            out.push_str("</g>\n");
            let mut cx = x;
            for child in &node.children {
                cx += emit(out, child, cx, depth + 1, total, hz);
            }
            w
        }
        let mut x = 0.0;
        for child in &root.children {
            x += emit(&mut out, child, x, 0, total, self.hz);
        }
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_packing_roundtrips() {
        for kind in SpanKind::ALL {
            let f = pack_frame(kind, 0x1234_5678_9abc);
            assert_eq!(frame_kind(f), kind as u16);
            assert_eq!(frame_tag(f), 0x1234_5678_9abc);
        }
        // Tags wider than 48 bits truncate without touching the kind.
        let f = pack_frame(SpanKind::Serve, u64::MAX);
        assert_eq!(frame_kind(f), SpanKind::Serve as u16);
        assert_eq!(frame_tag(f), TAG_MASK);
    }

    #[test]
    fn stack_push_pop_and_sample() {
        let stack = SpanStack::new(900, "test".into());
        let mut frames = Vec::new();
        stack.sample(&mut frames).expect("quiescent read");
        assert!(frames.is_empty());
        stack.push(pack_frame(SpanKind::Run, 1));
        stack.push(pack_frame(SpanKind::FindMin, 2));
        stack.sample(&mut frames).expect("quiescent read");
        assert_eq!(frames.len(), 2);
        assert_eq!(frame_kind(frames[0]), SpanKind::Run as u16);
        assert_eq!(frame_kind(frames[1]), SpanKind::FindMin as u16);
        stack.pop();
        stack.sample(&mut frames).expect("quiescent read");
        assert_eq!(frames.len(), 1);
        stack.pop();
        stack.pop(); // underflow saturates
        stack.sample(&mut frames).expect("quiescent read");
        assert!(frames.is_empty());
    }

    #[test]
    fn deep_stacks_truncate_but_stay_balanced() {
        let stack = SpanStack::new(901, "deep".into());
        for i in 0..(MAX_DEPTH + 10) {
            stack.push(pack_frame(SpanKind::Iteration, i as u64));
        }
        let mut frames = Vec::new();
        stack.sample(&mut frames).expect("quiescent read");
        assert_eq!(frames.len(), MAX_DEPTH);
        for _ in 0..10 {
            stack.pop();
        }
        stack.sample(&mut frames).expect("quiescent read");
        assert_eq!(frames.len(), MAX_DEPTH, "pops balance the excess pushes");
        for _ in 0..MAX_DEPTH {
            stack.pop();
        }
        stack.sample(&mut frames).expect("quiescent read");
        assert!(frames.is_empty());
    }

    #[test]
    fn trie_folds_and_collapses() {
        let mut root = TrieNode::default();
        let run = SpanKind::Run as u16;
        let fm = SpanKind::FindMin as u16;
        let cc = SpanKind::Connect as u16;
        root.fold(&[run, fm]);
        root.fold(&[run, fm]);
        root.fold(&[run, cc]);
        root.fold(&[run]);
        let mut paths = BTreeMap::new();
        root.collapse(&mut Vec::new(), &mut paths);
        assert_eq!(paths[&vec![run, fm]], 2);
        assert_eq!(paths[&vec![run, cc]], 1);
        assert_eq!(paths[&vec![run]], 1);
    }

    #[test]
    fn report_exports_are_consistent() {
        let mut paths = BTreeMap::new();
        paths.insert(vec![SpanKind::Run as u16, SpanKind::FindMin as u16], 30u64);
        paths.insert(vec![SpanKind::Run as u16, SpanKind::Compact as u16], 10);
        paths.insert(vec![SpanKind::Run as u16], 10);
        let report = ProfileReport {
            hz: 100,
            samples: 50,
            dropped: 0,
            wakeups: 60,
            wall_ns: 500_000_000,
            threads: vec![("main".into(), 50)],
            paths,
        };
        assert_eq!(report.total_samples(), 50);
        assert_eq!(report.inclusive_samples(SpanKind::Run), 50);
        assert_eq!(report.inclusive_samples(SpanKind::FindMin), 30);
        assert_eq!(report.self_samples(SpanKind::Run), 10);
        assert_eq!(report.hottest(), Some(SpanKind::Run));
        let folded = report.folded();
        assert!(folded.contains("run;find-min 30"), "{folded}");
        assert!(folded.contains("run;compact-graph 10"), "{folded}");
        assert!(folded.contains("run 10"), "{folded}");
        let top = report.top(10);
        assert!(top.contains("find-min"), "{top}");
        let svg = report.svg();
        assert!(svg.starts_with("<svg"), "{svg}");
        assert!(svg.contains("find-min"), "{svg}");
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn sampler_round_trip_catches_a_sleeping_span() {
        let _g = crate::tests::TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let report = std::thread::spawn(|| {
            start(997).expect("start profiler");
            {
                let _span = crate::span(SpanKind::Run, 7, 0);
                std::thread::sleep(Duration::from_millis(120));
            }
            stop()
        })
        .join()
        .expect("profiled thread");
        assert!(!is_running());
        let run = report.inclusive_samples(SpanKind::Run);
        assert!(run > 0, "a 120ms span at 997 Hz must be sampled");
        // Generous reconciliation: wall × hz within a factor of four.
        let expect = 0.120 * 997.0;
        assert!(
            (run as f64) > expect / 4.0 && (run as f64) < expect * 4.0,
            "got {run} samples, expected ~{expect}"
        );
    }

    #[test]
    fn start_twice_errors_and_stop_is_idempotent() {
        let _g = crate::tests::TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        start(97).expect("first start");
        assert!(start(97).is_err(), "second start must refuse");
        let _ = stop();
        let _ = stop();
        assert!(!is_running());
    }
}
