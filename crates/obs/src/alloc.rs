//! Process-wide allocation accounting: a [`GlobalAlloc`] wrapper around the
//! system allocator that counts allocs, frees, and live/peak heap bytes.
//!
//! This is the measurement backing the paper's malloc-contention story: the
//! Bor-AL vs Bor-ALM comparison is only reproducible if "how many heap
//! allocations did this run make" is a number the harness can print. The
//! binary opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: msf_obs::alloc::CountingAllocator = msf_obs::alloc::CountingAllocator;
//! ```
//!
//! and the counters stay dormant (one relaxed load and a branch per
//! allocation) unless `MSF_ALLOC_STATS` is set or [`set_enabled`] is called.
//!
//! Gate subtlety: the first allocation resolves the gate from the
//! environment, but `std::env::var` itself allocates. The resolver therefore
//! stores OFF *before* probing the environment, so the nested allocations it
//! triggers observe a decided (OFF) gate and pass straight through instead
//! of recursing; the final state is stored afterwards.
//!
//! Counting uses plain relaxed `fetch_add`s plus one `fetch_max` for the
//! peak. (The metrics registry forbids `fetch_max` on its record path; here
//! the whole facility is opt-in diagnostics on allocation-grade events, not
//! a per-element hot loop, so the CAS loop it lowers to is acceptable.)

// `GlobalAlloc` is an unsafe trait: the implementation below only delegates
// to `System` and adds atomic bookkeeping, upholding System's contract.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Live heap bytes (allocated − freed), updated on every counted call.
static LIVE: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE`] since process start or the last
/// [`reset_peak`].
static PEAK: AtomicU64 = AtomicU64::new(0);

#[inline]
fn counting() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    // Decide OFF first: the env probe below allocates, and those nested
    // calls must see a resolved gate or they would recurse back here.
    STATE.store(STATE_OFF, Ordering::Relaxed);
    let on = std::env::var("MSF_ALLOC_STATS")
        .map(|v| matches!(v.trim(), "1" | "true" | "on" | "TRUE" | "ON"))
        .unwrap_or(false);
    if on {
        STATE.store(STATE_ON, Ordering::Relaxed);
    }
    on
}

/// Turn allocation counting on or off for the whole process (overriding
/// `MSF_ALLOC_STATS`). Counting only has effect in binaries that installed
/// [`CountingAllocator`] as the global allocator.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

#[inline]
fn note_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn note_free(size: usize) {
    FREES.fetch_add(1, Ordering::Relaxed);
    FREED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    LIVE.fetch_sub(size as u64, Ordering::Relaxed);
}

/// The counting wrapper around [`System`]. Install with
/// `#[global_allocator]` in a binary crate; library crates must never
/// install it (one global allocator per program).
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() && counting() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if counting() {
            note_free(layout.size());
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() && counting() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() && counting() {
            // A realloc retires the old block and creates the new one.
            note_free(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

/// A snapshot of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap allocations counted (while enabled).
    pub allocs: u64,
    /// Heap frees counted.
    pub frees: u64,
    /// Total bytes allocated.
    pub allocated_bytes: u64,
    /// Total bytes freed.
    pub freed_bytes: u64,
    /// Live heap bytes at snapshot time.
    pub live_bytes: u64,
    /// High-water mark of live bytes since start / last [`reset_peak`].
    pub peak_bytes: u64,
}

impl AllocStats {
    /// Componentwise difference versus an earlier snapshot (for bracketing
    /// one run). `live`/`peak` are reported as-is from `self`, not
    /// differenced — a delta of water marks is meaningless.
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            frees: self.frees.wrapping_sub(earlier.frees),
            allocated_bytes: self.allocated_bytes.wrapping_sub(earlier.allocated_bytes),
            freed_bytes: self.freed_bytes.wrapping_sub(earlier.freed_bytes),
            live_bytes: self.live_bytes,
            peak_bytes: self.peak_bytes,
        }
    }
}

/// Read the current counters.
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
        freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
    }
}

/// Rebase the peak to the current live size, so the next measurement
/// window reports its own high-water mark rather than the process's.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak resident set size of this process in kilobytes, from the kernel's
/// `VmHWM` accounting. Returns 0 where `/proc` is unavailable. This is the
/// whole-process OS view (stacks, code, arenas), complementing the
/// heap-only [`AllocStats::peak_bytes`].
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    return rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                }
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests only exercise the bookkeeping helpers: the test binary
    // does not install CountingAllocator, so counters move only when we
    // drive them directly.

    #[test]
    fn note_roundtrip_and_peak() {
        set_enabled(false);
        let before = stats();
        note_alloc(1000);
        note_alloc(500);
        note_free(1000);
        let after = stats().since(&before);
        assert_eq!(after.allocs, 2);
        assert_eq!(after.frees, 1);
        assert_eq!(after.allocated_bytes, 1500);
        assert_eq!(after.freed_bytes, 1000);
        assert!(stats().peak_bytes >= stats().live_bytes);
        note_free(500);
        reset_peak();
        assert_eq!(stats().peak_bytes, stats().live_bytes);
    }

    #[test]
    fn peak_rss_is_plausible() {
        let kb = peak_rss_kb();
        // On Linux a running test process has at least ~1 MB resident.
        #[cfg(target_os = "linux")]
        assert!(kb > 1024, "VmHWM {kb} kB");
        #[cfg(not(target_os = "linux"))]
        assert_eq!(kb, 0);
    }

    #[test]
    fn since_is_componentwise_for_flows() {
        let a = AllocStats {
            allocs: 10,
            frees: 4,
            allocated_bytes: 100,
            freed_bytes: 40,
            live_bytes: 60,
            peak_bytes: 80,
        };
        let b = AllocStats {
            allocs: 25,
            frees: 20,
            allocated_bytes: 300,
            freed_bytes: 250,
            live_bytes: 50,
            peak_bytes: 90,
        };
        let d = b.since(&a);
        assert_eq!(d.allocs, 15);
        assert_eq!(d.frees, 16);
        assert_eq!(d.allocated_bytes, 200);
        assert_eq!(d.freed_bytes, 210);
        // Water marks pass through.
        assert_eq!(d.live_bytes, 50);
        assert_eq!(d.peak_bytes, 90);
    }
}
