//! Structure-of-arrays graph containers, generic over vertex-id width.
//!
//! [`SoaEdgeList`] is the transport representation behind the binary
//! on-disk format and the out-of-core generators: three parallel arrays
//! (`u`, `v`, `w`) with edge ids implicit in position. [`GenericCsr`] is
//! the matching CSR adjacency structure. Both are parameterized by
//! [`VertexId`] — `u32` keeps the bandwidth of today's in-memory layouts,
//! `u64` makes >4-billion-vertex graphs representable end to end (build,
//! store, convert) even though the compute kernels still require the
//! narrow case.

use crate::edgelist::{EdgeList, GraphBuildError};
use crate::vertexid::VertexId;

/// Flat `(u[], v[], w[])` edge storage with implicit ids.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaEdgeList<V: VertexId> {
    n: u64,
    u: Vec<V>,
    v: Vec<V>,
    w: Vec<f64>,
}

impl<V: VertexId> SoaEdgeList<V> {
    /// An empty graph over `n` vertices. Errors when `n` exceeds the id
    /// space of `V`.
    pub fn new(n: u64) -> Result<Self, GraphBuildError> {
        Self::with_capacity(n, 0)
    }

    /// [`SoaEdgeList::new`] with room reserved for `m` edges.
    pub fn with_capacity(n: u64, m: usize) -> Result<Self, GraphBuildError> {
        if (n as u128) > V::MAX_COUNT {
            return Err(GraphBuildError::TooManyVertices { n: n as u128 });
        }
        Ok(SoaEdgeList {
            n,
            u: Vec::with_capacity(m),
            v: Vec::with_capacity(m),
            w: Vec::with_capacity(m),
        })
    }

    /// Validate and append one edge.
    #[inline]
    pub fn try_push(&mut self, u: u64, v: u64, w: f64) -> Result<(), GraphBuildError> {
        let index = self.u.len();
        if u >= self.n {
            return Err(GraphBuildError::EndpointOutOfRange {
                index,
                endpoint: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphBuildError::EndpointOutOfRange {
                index,
                endpoint: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphBuildError::SelfLoop { index, vertex: u });
        }
        if !w.is_finite() {
            return Err(GraphBuildError::NonFiniteWeight { index });
        }
        self.u.push(V::from_u64(u));
        self.v.push(V::from_u64(v));
        self.w.push(w);
        Ok(())
    }

    /// Vertex count.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.n
    }

    /// Edge count.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.u.len()
    }

    /// The parallel arrays `(u, v, w)`.
    #[inline]
    pub fn arrays(&self) -> (&[V], &[V], &[f64]) {
        (&self.u, &self.v, &self.w)
    }

    /// Edge `i` as widened `(u, v, w)`.
    #[inline]
    pub fn edge(&self, i: usize) -> (u64, u64, f64) {
        (self.u[i].to_u64(), self.v[i].to_u64(), self.w[i])
    }

    /// Iterate edges as widened `(u, v, w)` triples in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, f64)> + '_ {
        (0..self.num_edges()).map(|i| self.edge(i))
    }

    /// Convert from the AoS edge list (always fits: `EdgeList` ids are u32).
    pub fn from_edge_list(g: &EdgeList) -> Result<Self, GraphBuildError> {
        let mut s = Self::with_capacity(g.num_vertices() as u64, g.num_edges())?;
        for e in g.edges() {
            s.try_push(u64::from(e.u), u64::from(e.v), e.w)?;
        }
        Ok(s)
    }

    /// Convert to the AoS edge list the compute kernels consume. Errors when
    /// the vertex or edge count exceeds the u32 id space.
    pub fn to_edge_list(&self) -> Result<EdgeList, GraphBuildError> {
        if (self.n as u128) > <u32 as VertexId>::MAX_COUNT {
            return Err(GraphBuildError::TooManyVertices { n: self.n as u128 });
        }
        let mut b =
            crate::edgelist::EdgeListBuilder::with_capacity(self.n as usize, self.num_edges())?;
        for (u, v, w) in self.iter() {
            b.try_push(u, v, w)?;
        }
        Ok(b.finish())
    }
}

/// CSR adjacency arrays generic over vertex-id width. Both directions of
/// every undirected edge are laid out; `ids` carries the input edge id of
/// each directed entry (edge ids must also fit `V`, checked at build).
#[derive(Debug, Clone, PartialEq)]
pub struct GenericCsr<V: VertexId> {
    offsets: Vec<u64>,
    targets: Vec<V>,
    weights: Vec<f64>,
    ids: Vec<V>,
}

impl<V: VertexId> GenericCsr<V> {
    /// Build from parallel `(u, v, w)` arrays over `n` vertices (counting
    /// sort by source, same layout discipline as
    /// [`crate::adjacency::AdjacencyArray`]). Endpoints must already be
    /// validated `< n`; edge count must fit `V`'s id space.
    pub fn from_arrays(n: u64, us: &[V], vs: &[V], ws: &[f64]) -> Result<Self, GraphBuildError> {
        assert_eq!(us.len(), vs.len());
        assert_eq!(us.len(), ws.len());
        let m = us.len();
        if (m as u128) > V::MAX_COUNT {
            return Err(GraphBuildError::TooManyEdges { m: m as u128 });
        }
        let n_idx =
            usize::try_from(n).map_err(|_| GraphBuildError::TooManyVertices { n: n as u128 })?;
        let mut counts = vec![0u64; n_idx + 1];
        for i in 0..m {
            counts[us[i].to_index()] += 1;
            counts[vs[i].to_index()] += 1;
        }
        // Exclusive scan in place: counts becomes the offsets.
        let mut acc = 0u64;
        for c in counts.iter_mut() {
            let here = *c;
            *c = acc;
            acc += here;
        }
        let total = acc as usize;
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut targets = vec![V::from_u64(0); total];
        let mut weights = vec![0f64; total];
        let mut ids = vec![V::from_u64(0); total];
        for i in 0..m {
            let (u, v, w) = (us[i], vs[i], ws[i]);
            for (src, dst) in [(u, v), (v, u)] {
                let slot = cursor[src.to_index()] as usize;
                cursor[src.to_index()] += 1;
                targets[slot] = dst;
                weights[slot] = w;
                ids[slot] = V::from_u64(i as u64);
            }
        }
        Ok(GenericCsr {
            offsets,
            targets,
            weights,
            ids,
        })
    }

    /// Build from a [`SoaEdgeList`].
    pub fn from_soa(g: &SoaEdgeList<V>) -> Result<Self, GraphBuildError> {
        let (u, v, w) = g.arrays();
        Self::from_arrays(g.num_vertices(), u, v, w)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed entries (2m).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// The row of `v` as parallel slices `(targets, weights, ids)`.
    #[inline]
    pub fn row(&self, v: u64) -> (&[V], &[f64], &[V]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (
            &self.targets[lo..hi],
            &self.weights[lo..hi],
            &self.ids[lo..hi],
        )
    }

    /// Heap bytes of the four arrays — the "in-memory CSR size" yardstick
    /// the ingestion-memory acceptance gate compares peaks against.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * V::WIDTH
            + self.weights.len() * std::mem::size_of::<f64>()
            + self.ids.len() * V::WIDTH
    }
}

/// Analytic size (bytes) of a `GenericCsr<V>` over `n` vertices and `m`
/// undirected edges, without building it.
pub fn csr_bytes<V: VertexId>(n: u64, m: u64) -> u128 {
    (n as u128 + 1) * 8 + 2 * (m as u128) * (V::WIDTH as u128 * 2 + 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyArray;
    use crate::generators::{random_graph, GeneratorConfig};

    #[test]
    fn soa_round_trips_through_edge_list() {
        let g = random_graph(&GeneratorConfig::with_seed(5), 60, 140);
        let narrow = SoaEdgeList::<u32>::from_edge_list(&g).unwrap();
        let wide = SoaEdgeList::<u64>::from_edge_list(&g).unwrap();
        assert_eq!(narrow.to_edge_list().unwrap(), g);
        assert_eq!(wide.to_edge_list().unwrap(), g);
        assert_eq!(
            narrow.iter().collect::<Vec<_>>(),
            wide.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn soa_validates_pushes() {
        let mut s = SoaEdgeList::<u32>::new(3).unwrap();
        assert!(s.try_push(0, 3, 1.0).is_err());
        assert!(s.try_push(1, 1, 1.0).is_err());
        assert!(s.try_push(0, 1, f64::NAN).is_err());
        s.try_push(0, 1, 1.0).unwrap();
        assert_eq!(s.num_edges(), 1);
    }

    #[test]
    fn wide_soa_accepts_huge_vertex_counts() {
        // Representable, not materialized: no per-vertex allocation happens.
        let s = SoaEdgeList::<u64>::new(1 << 40).unwrap();
        assert_eq!(s.num_vertices(), 1 << 40);
        assert!(SoaEdgeList::<u32>::new(1 << 40).is_err());
        assert!(s.to_edge_list().is_err(), "narrowing must fail");
    }

    #[test]
    fn generic_csr_matches_adjacency_array() {
        let g = random_graph(&GeneratorConfig::with_seed(9), 50, 120);
        let soa = SoaEdgeList::<u32>::from_edge_list(&g).unwrap();
        let csr = GenericCsr::from_soa(&soa).unwrap();
        let reference = AdjacencyArray::from_edge_list(&g);
        assert_eq!(csr.num_vertices(), reference.num_vertices());
        assert_eq!(csr.num_directed_edges(), reference.num_directed_edges());
        for v in 0..g.num_vertices() as u32 {
            let (t, w, i) = csr.row(u64::from(v));
            let (rt, rw, ri) = reference.row(v);
            assert_eq!(t, rt, "targets of {v}");
            assert_eq!(w, rw, "weights of {v}");
            assert_eq!(i, ri, "ids of {v}");
        }
    }

    #[test]
    fn generic_csr_u64_matches_u32() {
        let g = random_graph(&GeneratorConfig::with_seed(11), 40, 100);
        let narrow =
            GenericCsr::from_soa(&SoaEdgeList::<u32>::from_edge_list(&g).unwrap()).unwrap();
        let wide = GenericCsr::from_soa(&SoaEdgeList::<u64>::from_edge_list(&g).unwrap()).unwrap();
        for v in 0..g.num_vertices() as u64 {
            let (t32, w32, i32_) = narrow.row(v);
            let (t64, w64, i64_) = wide.row(v);
            assert_eq!(
                t32.iter().map(|&t| u64::from(t)).collect::<Vec<_>>(),
                t64.to_vec()
            );
            assert_eq!(w32, w64);
            assert_eq!(
                i32_.iter().map(|&i| u64::from(i)).collect::<Vec<_>>(),
                i64_.to_vec()
            );
        }
    }

    #[test]
    fn csr_size_model_matches_reality() {
        let g = random_graph(&GeneratorConfig::with_seed(2), 100, 400);
        let csr = GenericCsr::from_soa(&SoaEdgeList::<u32>::from_edge_list(&g).unwrap()).unwrap();
        assert_eq!(csr.heap_bytes() as u128, csr_bytes::<u32>(100, 400));
    }
}
