//! Maximum-weight-on-path queries over a forest (binary lifting).
//!
//! The substrate for cycle-property edge filtering, which the paper's §3
//! analysis motivates ("if we can exclude heavy edges in the early stages
//! … we may have a more efficient parallel implementation", citing Cole,
//! Klein & Tarjan's sampling algorithm and Katriel–Sanders–Träff): given a
//! spanning forest F of a sampled subgraph, a non-forest edge (u, v) can be
//! discarded iff it is strictly heavier than every edge on the F-path
//! between u and v.
//!
//! Build is O(n log n): BFS roots the forest, then ancestor tables double.
//! Each query is O(log n) and read-only, so the filtering pass
//! parallelizes trivially.

use crate::edge::EdgeKey;

const NONE: u32 = u32::MAX;

/// Binary-lifting path-maximum structure over a rooted forest. Maxima are
/// full [`EdgeKey`]s, so queries are exact under the suite's `(weight, id)`
/// total order — ties included.
#[derive(Debug, Clone)]
pub struct PathMaxForest {
    /// up[k][v] = 2^k-th ancestor of v (NONE above the root).
    up: Vec<Vec<u32>>,
    /// maxw[k][v] = max edge key on the path from v to up[k][v].
    maxw: Vec<Vec<EdgeKey>>,
    depth: Vec<u32>,
    /// Component root of each vertex (identifies connectivity).
    comp: Vec<u32>,
}

impl PathMaxForest {
    /// Build from forest edges `(u, v, key)` over vertices `0..n`.
    ///
    /// # Panics
    /// Panics if the edges contain a cycle.
    pub fn build(n: usize, edges: &[(u32, u32, EdgeKey)]) -> Self {
        // Adjacency of the forest.
        let mut adj: Vec<Vec<(u32, EdgeKey)>> = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            adj[u as usize].push((v, w));
            adj[v as usize].push((u, w));
        }
        let mut parent = vec![NONE; n];
        let mut pweight = vec![EdgeKey::MAX; n];
        let mut depth = vec![0u32; n];
        let mut comp = vec![NONE; n];
        let mut queue = std::collections::VecDeque::new();
        let mut visited_edges = 0usize;
        for root in 0..n as u32 {
            if comp[root as usize] != NONE {
                continue;
            }
            comp[root as usize] = root;
            queue.push_back(root);
            while let Some(x) = queue.pop_front() {
                for &(y, w) in &adj[x as usize] {
                    if comp[y as usize] != NONE {
                        continue;
                    }
                    comp[y as usize] = root;
                    parent[y as usize] = x;
                    pweight[y as usize] = w;
                    depth[y as usize] = depth[x as usize] + 1;
                    visited_edges += 1;
                    queue.push_back(y);
                }
            }
        }
        assert_eq!(visited_edges, edges.len(), "input contained a cycle");

        let levels = (usize::BITS - n.max(2).leading_zeros()) as usize;
        let mut up = vec![parent];
        let mut maxw = vec![pweight];
        for k in 1..levels {
            let (pu, pw) = (&up[k - 1], &maxw[k - 1]);
            let mut nu = vec![NONE; n];
            let mut nw = vec![EdgeKey::MAX; n];
            for v in 0..n {
                let mid = pu[v];
                if mid != NONE {
                    nu[v] = pu[mid as usize];
                    nw[v] = if nu[v] != NONE {
                        pw[v].max(pw[mid as usize])
                    } else {
                        pw[v]
                    };
                }
            }
            up.push(nu);
            maxw.push(nw);
        }
        PathMaxForest {
            up,
            maxw,
            depth,
            comp,
        }
    }

    /// True when `u` and `v` are in the same tree.
    #[inline]
    pub fn connected(&self, u: u32, v: u32) -> bool {
        self.comp[u as usize] == self.comp[v as usize]
    }

    /// Maximum edge key on the forest path between `u` and `v`, or `None`
    /// when they are in different trees (or `u == v`).
    pub fn path_max(&self, mut u: u32, mut v: u32) -> Option<EdgeKey> {
        if u == v || !self.connected(u, v) {
            return None;
        }
        let mut best = EdgeKey {
            w: crate::edge::OrderedWeight(f64::NEG_INFINITY),
            id: 0,
        };
        // Lift the deeper endpoint.
        if self.depth[u as usize] < self.depth[v as usize] {
            std::mem::swap(&mut u, &mut v);
        }
        let mut diff = self.depth[u as usize] - self.depth[v as usize];
        let mut k = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                best = best.max(self.maxw[k][u as usize]);
                u = self.up[k][u as usize];
            }
            diff >>= 1;
            k += 1;
        }
        if u == v {
            return Some(best);
        }
        // Lift both until the parents coincide.
        for k in (0..self.up.len()).rev() {
            if self.up[k][u as usize] != self.up[k][v as usize] {
                best = best.max(self.maxw[k][u as usize]);
                best = best.max(self.maxw[k][v as usize]);
                u = self.up[k][u as usize];
                v = self.up[k][v as usize];
            }
        }
        best = best.max(self.maxw[0][u as usize]);
        best = best.max(self.maxw[0][v as usize]);
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::OrderedWeight;

    fn k(w: f64, id: u32) -> EdgeKey {
        EdgeKey {
            w: OrderedWeight(w),
            id,
        }
    }

    /// Keyed forest edges from (u, v, w) triples, ids in order.
    fn keyed(edges: &[(u32, u32, f64)]) -> Vec<(u32, u32, EdgeKey)> {
        edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v, w))| (u, v, k(w, i as u32)))
            .collect()
    }

    /// Brute-force path max via DFS for cross-checking.
    fn brute(n: usize, edges: &[(u32, u32, EdgeKey)], u: u32, v: u32) -> Option<EdgeKey> {
        let mut adj: Vec<Vec<(u32, EdgeKey)>> = vec![Vec::new(); n];
        for &(a, b, w) in edges {
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
        }
        if u == v {
            return None;
        }
        let mut stack = vec![(u, k(f64::NEG_INFINITY, 0))];
        let mut seen = vec![false; n];
        seen[u as usize] = true;
        while let Some((x, mx)) = stack.pop() {
            for &(y, w) in &adj[x as usize] {
                if seen[y as usize] {
                    continue;
                }
                let m = mx.max(w);
                if y == v {
                    return Some(m);
                }
                seen[y as usize] = true;
                stack.push((y, m));
            }
        }
        None
    }

    #[test]
    fn path_on_a_chain() {
        let edges = keyed(&[(0, 1, 1.0), (1, 2, 5.0), (2, 3, 2.0)]);
        let pm = PathMaxForest::build(4, &edges);
        assert_eq!(pm.path_max(0, 3), Some(k(5.0, 1)));
        assert_eq!(pm.path_max(0, 1), Some(k(1.0, 0)));
        assert_eq!(pm.path_max(2, 3), Some(k(2.0, 2)));
        assert_eq!(pm.path_max(1, 1), None);
    }

    #[test]
    fn ties_resolve_by_id() {
        // Equal weights: the larger id is the larger key.
        let edges = keyed(&[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let pm = PathMaxForest::build(4, &edges);
        assert_eq!(pm.path_max(0, 3), Some(k(1.0, 2)));
        assert_eq!(pm.path_max(0, 2), Some(k(1.0, 1)));
    }

    #[test]
    fn different_trees_are_disconnected() {
        let edges = keyed(&[(0, 1, 1.0), (2, 3, 2.0)]);
        let pm = PathMaxForest::build(4, &edges);
        assert!(!pm.connected(0, 2));
        assert_eq!(pm.path_max(0, 3), None);
        assert!(pm.connected(0, 1));
    }

    #[test]
    fn star_and_binary_tree() {
        // Star centered at 0.
        let star = keyed(&(1..50u32).map(|v| (0, v, f64::from(v))).collect::<Vec<_>>());
        let pm = PathMaxForest::build(50, &star);
        assert_eq!(pm.path_max(3, 7).unwrap().w, OrderedWeight(7.0));
        assert_eq!(pm.path_max(49, 1).unwrap().w, OrderedWeight(49.0));
        // Heap-shaped binary tree.
        let tree = keyed(
            &(1..31u32)
                .map(|v| ((v - 1) / 2, v, f64::from(v) * 0.1))
                .collect::<Vec<_>>(),
        );
        let pm = PathMaxForest::build(31, &tree);
        for (u, v) in [(15u32, 22u32), (7, 8), (0, 30), (29, 30)] {
            assert_eq!(pm.path_max(u, v), brute(31, &tree, u, v), "({u},{v})");
        }
    }

    #[test]
    fn matches_brute_force_on_random_forest() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200usize;
        // Random forest: each vertex v>0 attaches to a random earlier vertex
        // with probability 0.9 (so several components exist).
        let mut raw = Vec::new();
        for v in 1..n as u32 {
            if rng.gen::<f64>() < 0.9 {
                raw.push((rng.gen_range(0..v), v, rng.gen::<f64>()));
            }
        }
        let edges = keyed(&raw);
        let pm = PathMaxForest::build(n, &edges);
        for _ in 0..500 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            assert_eq!(pm.path_max(u, v), brute(n, &edges, u, v), "({u},{v})");
        }
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn rejects_cycles() {
        let edges = keyed(&[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        PathMaxForest::build(3, &edges);
    }

    #[test]
    fn empty_forest_and_single_vertex() {
        let pm = PathMaxForest::build(0, &[]);
        assert!(pm.up[0].is_empty());
        let pm = PathMaxForest::build(1, &[]);
        assert!(pm.connected(0, 0));
        assert_eq!(pm.path_max(0, 0), None);
        // Edgeless multi-vertex forest: everything is its own tree.
        let pm = PathMaxForest::build(4, &[]);
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(pm.connected(u, v), u == v);
                assert_eq!(pm.path_max(u, v), None);
            }
        }
    }

    #[test]
    fn ties_with_ids_against_insertion_order() {
        // Equal weights, but ids deliberately NOT in insertion order: the
        // key comparison must follow ids, not build order.
        let edges = vec![
            (0u32, 1u32, k(1.0, 9)),
            (1, 2, k(1.0, 4)),
            (2, 3, k(1.0, 7)),
        ];
        let pm = PathMaxForest::build(4, &edges);
        assert_eq!(pm.path_max(0, 3), Some(k(1.0, 9)));
        assert_eq!(pm.path_max(1, 3), Some(k(1.0, 7)));
        assert_eq!(pm.path_max(1, 2), Some(k(1.0, 4)));
    }

    #[test]
    fn many_small_trees_with_isolated_vertices() {
        // Pairs (0,1), (4,5), … with isolated vertices 2, 3, 6, 7 between.
        let edges = keyed(&[(0, 1, 3.0), (4, 5, 1.0), (8, 9, 2.0)]);
        let pm = PathMaxForest::build(10, &edges);
        assert_eq!(pm.path_max(0, 1), Some(k(3.0, 0)));
        assert_eq!(pm.path_max(4, 5), Some(k(1.0, 1)));
        assert_eq!(pm.path_max(0, 4), None);
        assert_eq!(pm.path_max(2, 3), None);
        assert!(!pm.connected(2, 6));
        assert!(!pm.connected(1, 9));
    }

    #[test]
    fn deep_chain_exercises_all_lifting_levels() {
        // A 1000-vertex path: queries must climb ~10 lifting levels; the
        // maximum sits mid-path so both endpoint climbs matter.
        let n = 1000u32;
        let raw: Vec<(u32, u32, f64)> = (0..n - 1)
            .map(|v| (v, v + 1, if v == 499 { 1e6 } else { f64::from(v % 97) }))
            .collect();
        let edges = keyed(&raw);
        let pm = PathMaxForest::build(n as usize, &edges);
        assert_eq!(pm.path_max(0, n - 1), Some(k(1e6, 499)));
        assert_eq!(pm.path_max(450, 550), Some(k(1e6, 499)));
        // Entirely on one side of the spike.
        assert_eq!(pm.path_max(0, 400), brute(n as usize, &edges, 0, 400));
        assert_eq!(pm.path_max(600, 999), brute(n as usize, &edges, 600, 999));
    }
}
