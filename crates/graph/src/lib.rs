//! # msf-graph
//!
//! Sparse-graph representations, generators, and I/O for the MSF suite.
//!
//! The paper's three graph layouts are all here:
//!
//! * [`edgelist::EdgeList`] — the flat list of weighted undirected edges
//!   that Bor-EL sorts globally each iteration (§2.1);
//! * [`adjacency::AdjacencyArray`] — cache-friendly CSR adjacency arrays
//!   (Park/Penner/Prasanna-style), the substrate of Bor-AL and of every
//!   Prim-style traversal (§2.2);
//! * [`flexadj::FlexAdjacencyList`] — the paper's new *flexible adjacency
//!   list*, a per-supervertex list of adjacency arrays whose compact-graph
//!   step is pointer surgery instead of edge rewriting (§2.3).
//!
//! [`generators`] reproduces the full §5.1 input suite: random `G(n, m)`,
//! regular/irregular meshes (2D, 2D60, 3D40), fixed-degree geometric graphs,
//! and the Chung–Condon structured worst cases `str0..str3` — plus the
//! large-graph tier's streaming R-MAT and power-law generators.
//!
//! The large-graph substrate lives in [`binfmt`] (the `.msfb` binary
//! on-disk format with a memory-mapped zero-copy loader), [`soa`]
//! (structure-of-arrays edge lists and CSR generic over id width), and
//! [`vertexid`] (the sealed u32/u64 width trait).

// `binfmt::bytes` is the single intentional exception (mmap + checked POD
// casts); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod binfmt;
pub mod dense;
pub mod edge;
pub mod edgelist;
pub mod flexadj;
pub mod generators;
pub mod io;
pub mod pathmax;
pub mod soa;
pub mod transform;
pub mod validate;
pub mod vertexid;

pub use adjacency::AdjacencyArray;
pub use binfmt::BinGraph;
pub use edge::{Edge, EdgeKey, OrderedWeight};
pub use edgelist::{EdgeList, GraphBuildError};
pub use flexadj::FlexAdjacencyList;
pub use soa::{GenericCsr, SoaEdgeList};
pub use vertexid::VertexId;
