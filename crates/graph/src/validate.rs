//! Graph invariant checks used by generators, I/O, and the test suite.

use crate::edgelist::EdgeList;
use msf_primitives::unionfind::UnionFind;

/// Verify the graph is *simple*: endpoints in range (already enforced at
/// construction), no self-loops (idem), and no parallel edges. Returns a
/// description of the first violation.
pub fn check_simple(g: &EdgeList) -> Result<(), String> {
    let mut keys: Vec<u64> = g
        .edges()
        .iter()
        .map(|e| {
            let (lo, hi) = if e.u < e.v { (e.u, e.v) } else { (e.v, e.u) };
            (u64::from(lo) << 32) | u64::from(hi)
        })
        .collect();
    keys.sort_unstable();
    for w in keys.windows(2) {
        if w[0] == w[1] {
            return Err(format!(
                "parallel edge between {} and {}",
                w[0] >> 32,
                w[0] & 0xFFFF_FFFF
            ));
        }
    }
    Ok(())
}

/// Number of connected components (union–find; reference-quality, not the
/// parallel kernel).
pub fn component_count(g: &EdgeList) -> usize {
    let mut uf = UnionFind::new(g.num_vertices());
    for e in g.edges() {
        uf.union(e.u as usize, e.v as usize);
    }
    uf.set_count()
}

/// True when the graph is connected (vacuously true for n ≤ 1).
pub fn is_connected(g: &EdgeList) -> bool {
    component_count(g) <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_parallel_edges() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 0, 2.0)]);
        assert!(check_simple(&g).unwrap_err().contains("parallel"));
    }

    #[test]
    fn accepts_simple_graphs() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0)]);
        assert!(check_simple(&g).is_ok());
    }

    #[test]
    fn counts_components() {
        let g = EdgeList::from_triples(5, vec![(0, 1, 1.0), (2, 3, 1.0)]);
        assert_eq!(component_count(&g), 3);
        assert!(!is_connected(&g));
        let t = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        assert!(is_connected(&t));
    }

    #[test]
    fn empty_graphs() {
        let g = EdgeList::from_triples(0, vec![]);
        assert!(check_simple(&g).is_ok());
        assert!(is_connected(&g));
    }
}
