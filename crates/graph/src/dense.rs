//! Dense adjacency-matrix graphs.
//!
//! The paper's §2 contrasts its sparse compact-graph designs with the known
//! efficient dense case: "For dense graphs that can be represented by an
//! adjacency matrix, JáJá describes a simple and efficient implementation"
//! of compact-graph. This module supplies that representation so the suite
//! includes the dense Borůvka baseline (Bor-Dense) the sparse variants are
//! implicitly measured against — and the one earlier studies like
//! Dehne & Götz built on.
//!
//! The matrix stores, per ordered vertex pair, the minimum-weight edge
//! between them (weight + input edge id), `f64::INFINITY` marking absence.
//! Memory is Θ(n²), so construction asserts a sane bound.

use crate::edge::{EdgeKey, OrderedWeight};
use crate::edgelist::EdgeList;

/// Largest vertex count the dense representation accepts (n² entries of
/// 12 bytes ≈ 4.8 GB at this bound; realistic dense inputs are far smaller).
pub const MAX_DENSE_VERTICES: usize = 20_000;

/// Why a graph cannot be held as a dense adjacency matrix: Θ(n²) entries
/// would exceed [`MAX_DENSE_VERTICES`]² (or overflow `usize` entirely —
/// `n * n` is computed checked, never wrapped). Carries the sizes so
/// callers (the CLI, the algorithm dispatcher) can report the cost or fall
/// back to a sparse representation instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseSizeError {
    /// The offending vertex count.
    pub n: usize,
    /// The matrix entry count `n²` this would require, when it is even
    /// computable in `usize`.
    pub entries: Option<u128>,
}

impl DenseSizeError {
    fn new(n: usize) -> DenseSizeError {
        DenseSizeError {
            n,
            entries: (n as u128).checked_mul(n as u128),
        }
    }

    /// Approximate bytes the matrix would need (12 bytes per entry).
    pub fn bytes(&self) -> Option<u128> {
        self.entries.and_then(|e| e.checked_mul(12))
    }
}

impl std::fmt::Display for DenseSizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Keep the historic panic phrase "caps at" — the panicking
        // constructors surface this Display verbatim.
        write!(
            f,
            "dense representation caps at {MAX_DENSE_VERTICES} vertices; {} would need",
            self.n
        )?;
        match self.bytes() {
            Some(b) => write!(f, " {} matrix bytes", b),
            None => write!(f, " more matrix bytes than usize can count"),
        }
    }
}

impl std::error::Error for DenseSizeError {}

impl From<DenseSizeError> for std::io::Error {
    fn from(e: DenseSizeError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

fn checked_entries(n: usize) -> Result<usize, DenseSizeError> {
    if n > MAX_DENSE_VERTICES {
        return Err(DenseSizeError::new(n));
    }
    n.checked_mul(n).ok_or_else(|| DenseSizeError::new(n))
}

/// Symmetric adjacency matrix of minimum edges between vertex pairs.
#[derive(Debug, Clone)]
pub struct DenseGraph {
    n: usize,
    /// Row-major weights, `INFINITY` = no edge.
    w: Vec<f64>,
    /// Row-major input edge ids (undefined where `w` is infinite).
    id: Vec<u32>,
}

impl DenseGraph {
    /// Build from an edge list; parallel edges collapse to their minimum
    /// immediately (the matrix can hold only one edge per pair).
    ///
    /// # Panics
    /// Panics when the vertex count exceeds [`MAX_DENSE_VERTICES`]; use
    /// [`DenseGraph::try_from_edge_list`] for a checked error.
    pub fn from_edge_list(g: &EdgeList) -> Self {
        Self::try_from_edge_list(g).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build from an edge list, reporting oversized inputs as a
    /// [`DenseSizeError`] instead of panicking.
    pub fn try_from_edge_list(g: &EdgeList) -> Result<Self, DenseSizeError> {
        let mut dense = Self::try_empty(g.num_vertices())?;
        for e in g.edges() {
            dense.relax(e.u, e.v, e.w, e.id);
            dense.relax(e.v, e.u, e.w, e.id);
        }
        Ok(dense)
    }

    /// An empty matrix over `n` vertices (used by compact-graph).
    ///
    /// # Panics
    /// Panics when `n` exceeds [`MAX_DENSE_VERTICES`]; use
    /// [`DenseGraph::try_empty`] for a checked error.
    pub fn empty(n: usize) -> Self {
        Self::try_empty(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// An empty matrix over `n` vertices, reporting oversized `n` as a
    /// [`DenseSizeError`] instead of panicking.
    pub fn try_empty(n: usize) -> Result<Self, DenseSizeError> {
        let entries = checked_entries(n)?;
        Ok(DenseGraph {
            n,
            w: vec![f64::INFINITY; entries],
            id: vec![u32::MAX; entries],
        })
    }

    /// Vertex count.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Keep the lighter of the current and offered edge for pair `(a, b)`.
    #[inline]
    pub fn relax(&mut self, a: u32, b: u32, w: f64, id: u32) {
        let slot = a as usize * self.n + b as usize;
        let incoming = EdgeKey {
            w: OrderedWeight(w),
            id,
        };
        if self.w[slot].is_infinite() || incoming < self.key_at(slot) {
            self.w[slot] = w;
            self.id[slot] = id;
        }
    }

    #[inline]
    fn key_at(&self, slot: usize) -> EdgeKey {
        EdgeKey {
            w: OrderedWeight(self.w[slot]),
            id: self.id[slot],
        }
    }

    /// The `(weight, id)` of the edge between `a` and `b`, if present.
    #[inline]
    pub fn get(&self, a: u32, b: u32) -> Option<(f64, u32)> {
        let slot = a as usize * self.n + b as usize;
        (!self.w[slot].is_infinite()).then(|| (self.w[slot], self.id[slot]))
    }

    /// The row of vertex `a` as parallel (weights, ids) slices.
    #[inline]
    pub fn row(&self, a: u32) -> (&[f64], &[u32]) {
        let lo = a as usize * self.n;
        (&self.w[lo..lo + self.n], &self.id[lo..lo + self.n])
    }

    /// Minimum-key edge of row `a`, skipping the diagonal: returns
    /// `(column, weight, id)`.
    pub fn row_min(&self, a: u32) -> Option<(u32, f64, u32)> {
        let (ws, ids) = self.row(a);
        let mut best: Option<(EdgeKey, u32)> = None;
        for (b, (&w, &id)) in ws.iter().zip(ids).enumerate() {
            if b == a as usize || w.is_infinite() {
                continue;
            }
            let key = EdgeKey {
                w: OrderedWeight(w),
                id,
            };
            if best.is_none_or(|(bk, _)| key < bk) {
                best = Some((key, b as u32));
            }
        }
        best.map(|(key, b)| (b, key.w.0, key.id))
    }

    /// Number of finite off-diagonal entries (2m).
    pub fn directed_entries(&self) -> usize {
        self.w.iter().filter(|w| w.is_finite()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DenseGraph {
        DenseGraph::from_edge_list(&EdgeList::from_triples(
            3,
            vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)],
        ))
    }

    #[test]
    fn builds_symmetric_matrix() {
        let d = triangle();
        assert_eq!(d.get(0, 1), Some((1.0, 0)));
        assert_eq!(d.get(1, 0), Some((1.0, 0)));
        assert_eq!(d.get(2, 0), Some((3.0, 2)));
        assert_eq!(d.get(0, 0), None);
        assert_eq!(d.directed_entries(), 6);
    }

    #[test]
    fn row_min_skips_diagonal_and_picks_lightest() {
        let d = triangle();
        assert_eq!(d.row_min(0), Some((1, 1.0, 0)));
        assert_eq!(d.row_min(2), Some((1, 2.0, 1)));
        let empty = DenseGraph::empty(2);
        assert_eq!(empty.row_min(0), None);
    }

    #[test]
    fn relax_keeps_minimum_under_ties_by_id() {
        let mut d = DenseGraph::empty(2);
        d.relax(0, 1, 5.0, 7);
        d.relax(0, 1, 5.0, 3); // same weight, lower id wins
        assert_eq!(d.get(0, 1), Some((5.0, 3)));
        d.relax(0, 1, 4.0, 9);
        assert_eq!(d.get(0, 1), Some((4.0, 9)));
        d.relax(0, 1, 6.0, 1); // heavier: ignored
        assert_eq!(d.get(0, 1), Some((4.0, 9)));
    }

    #[test]
    #[should_panic(expected = "caps at")]
    fn rejects_oversized_graphs() {
        DenseGraph::empty(MAX_DENSE_VERTICES + 1);
    }

    #[test]
    fn try_empty_reports_size_instead_of_panicking() {
        let err = DenseGraph::try_empty(MAX_DENSE_VERTICES + 1).unwrap_err();
        assert_eq!(err.n, MAX_DENSE_VERTICES + 1);
        assert!(err.bytes().unwrap() > 12 * (MAX_DENSE_VERTICES as u128).pow(2));
        assert!(err.to_string().contains("caps at"));
        // A count whose square overflows usize must error, not wrap into a
        // tiny allocation.
        let huge = DenseGraph::try_empty(usize::MAX).unwrap_err();
        assert_eq!(huge.n, usize::MAX);
        assert!(DenseGraph::try_empty(8).is_ok());
    }
}
