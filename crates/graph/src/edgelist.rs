//! The edge-list graph representation.

use crate::edge::Edge;

/// An undirected weighted graph stored as a flat edge list. Each edge is
/// stored once; phases that want both directions (Bor-EL's global sort, CSR
//  construction) mirror internally.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeList {
    n: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Build from raw `(u, v, w)` triples; edge ids are assigned in order.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range, an edge is a self-loop, or a
    /// weight is non-finite. (Multi-edges are allowed — Borůvka's
    /// compact-graph step is *about* merging them — but the generators never
    /// produce them.)
    pub fn from_triples(n: usize, triples: impl IntoIterator<Item = (u32, u32, f64)>) -> Self {
        assert!(n <= u32::MAX as usize, "vertex ids are u32");
        let edges: Vec<Edge> = triples
            .into_iter()
            .enumerate()
            .map(|(id, (u, v, w))| {
                assert!(
                    (u as usize) < n && (v as usize) < n,
                    "endpoint out of range"
                );
                assert_ne!(u, v, "self-loops are not valid input edges");
                assert!(w.is_finite(), "weights must be finite");
                Edge::new(u, v, w, id as u32)
            })
            .collect();
        assert!(edges.len() <= u32::MAX as usize, "edge ids are u32");
        EdgeList { n, edges }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges, ids matching their positions.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Look an edge up by its id.
    #[inline]
    pub fn edge(&self, id: u32) -> Edge {
        self.edges[id as usize]
    }

    /// Density m/n as used throughout the paper's Table 1.
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.n as f64
        }
    }

    /// Total weight of all edges (used by tests as a checksum).
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// Mirrored directed copy: every `{u, v}` appears as `(u → v)` and
    /// `(v → u)`, as the Bor-EL representation requires ("each edge (u,v)
    /// appearing twice in the list for both directions", §2.1).
    pub fn to_directed_pairs(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            out.push(*e);
            out.push(Edge::new(e.v, e.u, e.w, e.id));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> EdgeList {
        EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
    }

    #[test]
    fn builds_and_exposes_edges() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge(1), Edge::new(1, 2, 2.0, 1));
        assert_eq!(g.total_weight(), 6.0);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn directed_pairs_mirror() {
        let g = triangle();
        let d = g.to_directed_pairs();
        assert_eq!(d.len(), 6);
        assert_eq!(d[0], Edge::new(0, 1, 1.0, 0));
        assert_eq!(d[1], Edge::new(1, 0, 1.0, 0));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        EdgeList::from_triples(2, vec![(1, 1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        EdgeList::from_triples(2, vec![(0, 2, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_weights() {
        EdgeList::from_triples(2, vec![(0, 1, f64::NAN)]);
    }

    #[test]
    fn empty_graph() {
        let g = EdgeList::from_triples(0, vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.density(), 0.0);
    }
}
