//! The edge-list graph representation.

use crate::edge::Edge;

/// Why a set of `(u, v, w)` triples cannot form a valid [`EdgeList`].
///
/// Every ingestion boundary (DIMACS, METIS, the binary loader, the builder
/// API) reports through this type instead of panicking, so hostile or
/// corrupt input becomes a clean error. The `Display` messages deliberately
/// contain the historic panic phrases ("out of range", "self-loops",
/// "finite") that the panicking constructors still raise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphBuildError {
    /// The vertex count exceeds the `u32` id space (`n > 2³²`; ids run
    /// `0..n`, so `n == 2³²` is the largest representable count).
    TooManyVertices {
        /// The offending vertex count.
        n: u128,
    },
    /// The edge count exceeds the `u32` edge-id space.
    TooManyEdges {
        /// The offending edge count.
        m: u128,
    },
    /// An endpoint is not `< n`.
    EndpointOutOfRange {
        /// Index of the offending edge in input order.
        index: usize,
        /// The endpoint value.
        endpoint: u64,
        /// The declared vertex count.
        n: u64,
    },
    /// Both endpoints are the same vertex.
    SelfLoop {
        /// Index of the offending edge in input order.
        index: usize,
        /// The repeated endpoint.
        vertex: u64,
    },
    /// The weight is NaN or ±∞, which would break the total edge order.
    NonFiniteWeight {
        /// Index of the offending edge in input order.
        index: usize,
    },
}

impl std::fmt::Display for GraphBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GraphBuildError::TooManyVertices { n } => {
                write!(f, "vertex count {n} exceeds the u32 id space (max 2^32)")
            }
            GraphBuildError::TooManyEdges { m } => {
                write!(f, "edge count {m} exceeds the u32 edge-id space")
            }
            GraphBuildError::EndpointOutOfRange { index, endpoint, n } => {
                write!(
                    f,
                    "edge {index}: endpoint {endpoint} out of range for {n} vertices"
                )
            }
            GraphBuildError::SelfLoop { index, vertex } => {
                write!(
                    f,
                    "edge {index}: self-loops are not valid input edges (vertex {vertex})"
                )
            }
            GraphBuildError::NonFiniteWeight { index } => {
                write!(f, "edge {index}: weights must be finite")
            }
        }
    }
}

impl std::error::Error for GraphBuildError {}

impl From<GraphBuildError> for std::io::Error {
    fn from(e: GraphBuildError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Incremental, validating [`EdgeList`] constructor.
///
/// The streaming parsers push one edge at a time straight off the wire;
/// every push re-validates endpoints, self-loops, weight finiteness, and
/// the edge-id capacity, so a finished builder is a valid graph by
/// construction.
#[derive(Debug, Clone)]
pub struct EdgeListBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl EdgeListBuilder {
    /// Start a builder over `n` vertices.
    pub fn new(n: usize) -> Result<Self, GraphBuildError> {
        Self::with_capacity(n, 0)
    }

    /// Start a builder over `n` vertices, reserving room for `m` edges (the
    /// parsers pass the declared edge count so the hot loop never
    /// reallocates).
    pub fn with_capacity(n: usize, m: usize) -> Result<Self, GraphBuildError> {
        if (n as u128) > <u32 as crate::vertexid::VertexId>::MAX_COUNT {
            return Err(GraphBuildError::TooManyVertices { n: n as u128 });
        }
        if (m as u128) > u32::MAX as u128 {
            return Err(GraphBuildError::TooManyEdges { m: m as u128 });
        }
        Ok(EdgeListBuilder {
            n,
            edges: Vec::with_capacity(m),
        })
    }

    /// Validate and append one edge; its id is its push order.
    #[inline]
    pub fn try_push(&mut self, u: u64, v: u64, w: f64) -> Result<(), GraphBuildError> {
        let index = self.edges.len();
        if index as u128 >= u32::MAX as u128 {
            return Err(GraphBuildError::TooManyEdges {
                m: index as u128 + 1,
            });
        }
        if u >= self.n as u64 {
            return Err(GraphBuildError::EndpointOutOfRange {
                index,
                endpoint: u,
                n: self.n as u64,
            });
        }
        if v >= self.n as u64 {
            return Err(GraphBuildError::EndpointOutOfRange {
                index,
                endpoint: v,
                n: self.n as u64,
            });
        }
        if u == v {
            return Err(GraphBuildError::SelfLoop { index, vertex: u });
        }
        if !w.is_finite() {
            return Err(GraphBuildError::NonFiniteWeight { index });
        }
        self.edges
            .push(Edge::new(u as u32, v as u32, w, index as u32));
        Ok(())
    }

    /// Number of edges pushed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edge has been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finish into the immutable edge list.
    pub fn finish(self) -> EdgeList {
        EdgeList {
            n: self.n,
            edges: self.edges,
        }
    }
}

/// An undirected weighted graph stored as a flat edge list. Each edge is
/// stored once; phases that want both directions (Bor-EL's global sort, CSR
//  construction) mirror internally.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeList {
    n: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Build from raw `(u, v, w)` triples; edge ids are assigned in order.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range, an edge is a self-loop, or a
    /// weight is non-finite. (Multi-edges are allowed — Borůvka's
    /// compact-graph step is *about* merging them — but the generators never
    /// produce them.) Use [`EdgeList::try_from_triples`] to get a checked
    /// error instead; ingestion boundaries must.
    pub fn from_triples(n: usize, triples: impl IntoIterator<Item = (u32, u32, f64)>) -> Self {
        Self::try_from_triples(n, triples).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build from raw `(u, v, w)` triples, reporting the first violation as
    /// a [`GraphBuildError`] instead of panicking.
    pub fn try_from_triples(
        n: usize,
        triples: impl IntoIterator<Item = (u32, u32, f64)>,
    ) -> Result<Self, GraphBuildError> {
        let iter = triples.into_iter();
        let mut b = EdgeListBuilder::with_capacity(n, iter.size_hint().0)?;
        for (u, v, w) in iter {
            b.try_push(u as u64, v as u64, w)?;
        }
        Ok(b.finish())
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges, ids matching their positions.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Look an edge up by its id.
    #[inline]
    pub fn edge(&self, id: u32) -> Edge {
        self.edges[id as usize]
    }

    /// Density m/n as used throughout the paper's Table 1.
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.n as f64
        }
    }

    /// Total weight of all edges (used by tests as a checksum).
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// Mirrored directed copy: every `{u, v}` appears as `(u → v)` and
    /// `(v → u)`, as the Bor-EL representation requires ("each edge (u,v)
    /// appearing twice in the list for both directions", §2.1).
    pub fn to_directed_pairs(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            out.push(*e);
            out.push(Edge::new(e.v, e.u, e.w, e.id));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> EdgeList {
        EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
    }

    #[test]
    fn builds_and_exposes_edges() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge(1), Edge::new(1, 2, 2.0, 1));
        assert_eq!(g.total_weight(), 6.0);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn directed_pairs_mirror() {
        let g = triangle();
        let d = g.to_directed_pairs();
        assert_eq!(d.len(), 6);
        assert_eq!(d[0], Edge::new(0, 1, 1.0, 0));
        assert_eq!(d[1], Edge::new(1, 0, 1.0, 0));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        EdgeList::from_triples(2, vec![(1, 1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        EdgeList::from_triples(2, vec![(0, 2, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_weights() {
        EdgeList::from_triples(2, vec![(0, 1, f64::NAN)]);
    }

    #[test]
    fn try_from_triples_reports_instead_of_panicking() {
        assert_eq!(
            EdgeList::try_from_triples(2, vec![(1, 1, 1.0)]),
            Err(GraphBuildError::SelfLoop {
                index: 0,
                vertex: 1
            })
        );
        assert_eq!(
            EdgeList::try_from_triples(2, vec![(0, 1, 1.0), (0, 2, 1.0)]),
            Err(GraphBuildError::EndpointOutOfRange {
                index: 1,
                endpoint: 2,
                n: 2
            })
        );
        assert_eq!(
            EdgeList::try_from_triples(2, vec![(0, 1, f64::INFINITY)]),
            Err(GraphBuildError::NonFiniteWeight { index: 0 })
        );
    }

    #[test]
    fn builder_validates_incrementally() {
        let mut b = EdgeListBuilder::with_capacity(3, 2).unwrap();
        b.try_push(0, 1, 0.5).unwrap();
        assert!(b.try_push(1, 3, 1.0).is_err(), "endpoint == n rejected");
        b.try_push(1, 2, 1.5).unwrap();
        let g = b.finish();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge(1), Edge::new(1, 2, 1.5, 1));
    }

    #[test]
    fn vertex_capacity_boundary_admits_full_u32_space() {
        // n = 2³² is representable (ids 0..=u32::MAX); n = 2³² + 1 is not.
        // Neither allocates: capacity checks precede any reservation.
        let full = 1usize << 32;
        assert!(EdgeListBuilder::new(full).is_ok());
        assert_eq!(
            EdgeListBuilder::new(full + 1).unwrap_err(),
            GraphBuildError::TooManyVertices {
                n: (full + 1) as u128
            }
        );
    }

    #[test]
    fn empty_graph() {
        let g = EdgeList::from_triples(0, vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.density(), 0.0);
    }
}
