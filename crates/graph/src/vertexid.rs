//! The sealed vertex-id width abstraction.
//!
//! Every in-memory structure in this suite indexes vertices with `u32`,
//! which halves index bandwidth versus `u64` and is the right call for
//! every graph with fewer than 2³² vertices — the paper's whole range and
//! then some. The on-disk binary format and the structure-of-arrays
//! containers ([`crate::soa`]) are generic over [`VertexId`] so that
//! graphs beyond 4 billion vertices stay *representable* (storage,
//! conversion, streaming) without taxing the narrow case with wide ids.
//!
//! The trait is sealed: exactly `u32` and `u64` implement it, which keeps
//! the on-disk `flags` bit a total description of the element width.

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// A vertex-id integer type: `u32` (narrow) or `u64` (wide). Sealed.
///
/// The [`crate::binfmt::bytes::Pod`] supertrait is what lets the binary
/// loader hand out zero-copy `&[V]` views of the mapped file.
pub trait VertexId:
    sealed::Sealed
    + crate::binfmt::bytes::Pod
    + Copy
    + Ord
    + Eq
    + std::hash::Hash
    + std::fmt::Debug
    + std::fmt::Display
    + Send
    + Sync
    + 'static
{
    /// Element width in bytes (4 or 8).
    const WIDTH: usize;
    /// True for the `u64` specialization (the on-disk `WIDE` flag).
    const WIDE: bool;
    /// Largest *vertex count* this width can index: ids run `0..count`,
    /// so a `u32` id space admits exactly `2³²` vertices.
    const MAX_COUNT: u128;

    /// Widen to `u64` (lossless for both specializations).
    fn to_u64(self) -> u64;
    /// Narrow from `u64`, `None` when out of range.
    fn try_from_u64(x: u64) -> Option<Self>;
    /// Narrow from `u64`; panics when out of range (callers validate first).
    #[inline]
    fn from_u64(x: u64) -> Self {
        Self::try_from_u64(x).expect("vertex id out of range for this width")
    }
    /// To a `usize` index (ids are always ≤ the in-memory vertex count).
    fn to_index(self) -> usize;
}

impl VertexId for u32 {
    const WIDTH: usize = 4;
    const WIDE: bool = false;
    const MAX_COUNT: u128 = 1 << 32;

    #[inline]
    fn to_u64(self) -> u64 {
        u64::from(self)
    }
    #[inline]
    fn try_from_u64(x: u64) -> Option<Self> {
        u32::try_from(x).ok()
    }
    #[inline]
    fn to_index(self) -> usize {
        self as usize
    }
}

impl VertexId for u64 {
    const WIDTH: usize = 8;
    const WIDE: bool = true;
    const MAX_COUNT: u128 = 1 << 64;

    #[inline]
    fn to_u64(self) -> u64 {
        self
    }
    #[inline]
    fn try_from_u64(x: u64) -> Option<Self> {
        Some(x)
    }
    #[inline]
    fn to_index(self) -> usize {
        usize::try_from(self).expect("wide vertex id exceeds the address space")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape<V: VertexId>() -> (usize, bool) {
        (V::WIDTH, V::WIDE)
    }

    #[test]
    fn widths_and_flags() {
        assert_eq!(shape::<u32>(), (4, false));
        assert_eq!(shape::<u64>(), (8, true));
        assert_eq!(<u32 as VertexId>::MAX_COUNT, 1u128 << 32);
    }

    #[test]
    fn round_trips() {
        assert_eq!(
            <u32 as VertexId>::try_from_u64(u64::from(u32::MAX)),
            Some(u32::MAX)
        );
        assert_eq!(<u32 as VertexId>::try_from_u64(1 << 32), None);
        assert_eq!(<u64 as VertexId>::from_u64(1 << 40).to_u64(), 1 << 40);
        assert_eq!(7u32.to_index(), 7usize);
    }
}
