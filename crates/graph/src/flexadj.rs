//! The flexible adjacency list (paper §2.3).
//!
//! Bor-FAL's insight: never rewrite edges. The original adjacency arrays
//! stay intact for the entire run; a supervertex simply *collects* the
//! original vertices whose adjacency lists belong to it ("a linked list of
//! adjacency lists"), and a lookup table maps every original vertex to its
//! current supervertex. Compacting the graph is then a small sort plus
//! pointer appends, and find-min pays the added cost of translating
//! endpoints through the table and skipping self-loops on the fly.

use crate::adjacency::AdjacencyArray;
use crate::edgelist::EdgeList;

/// Flexible adjacency list: immutable base CSR + supervertex membership
/// lists + the vertex→supervertex lookup table.
#[derive(Debug, Clone)]
pub struct FlexAdjacencyList {
    base: AdjacencyArray,
    /// members[s] = original vertices folded into supervertex s. The
    /// "linked list of adjacency lists": each member contributes its intact
    /// base adjacency array segment.
    members: Vec<Vec<u32>>,
    /// label[v] = current supervertex of original vertex v.
    label: Vec<u32>,
}

impl FlexAdjacencyList {
    /// Initialize with every vertex its own supervertex, each pointing at
    /// exactly one adjacency list (paper Fig. 1b).
    pub fn new(g: &EdgeList) -> Self {
        let n = g.num_vertices();
        FlexAdjacencyList {
            base: AdjacencyArray::from_edge_list(g),
            members: (0..n as u32).map(|v| vec![v]).collect(),
            label: (0..n as u32).collect(),
        }
    }

    /// Current number of supervertices.
    #[inline]
    pub fn num_supervertices(&self) -> usize {
        self.members.len()
    }

    /// The untouched base adjacency structure.
    #[inline]
    pub fn base(&self) -> &AdjacencyArray {
        &self.base
    }

    /// The supervertex of original vertex `v`.
    #[inline]
    pub fn supervertex_of(&self, v: u32) -> u32 {
        self.label[v as usize]
    }

    /// The member vertices of supervertex `s`.
    #[inline]
    pub fn members(&self, s: u32) -> &[u32] {
        &self.members[s as usize]
    }

    /// The full lookup table.
    #[inline]
    pub fn labels(&self) -> &[u32] {
        &self.label
    }

    /// Iterate the (translated) incident entries of supervertex `s`:
    /// `(other_supervertex, weight, edge id)`, with self-loops already
    /// filtered out — the filtering duty the paper moves into find-min.
    /// Multi-edges are *not* merged; callers keep the minimum on the fly.
    pub fn incident(&self, s: u32) -> impl Iterator<Item = (u32, f64, u32)> + '_ {
        self.members[s as usize].iter().flat_map(move |&v| {
            self.base
                .neighbors(v)
                .map(move |(t, w, id)| (self.label[t as usize], w, id))
                .filter(move |&(ts, _, _)| ts != s)
        })
    }

    /// Compact the graph given the connected-component relabeling of the
    /// current supervertices: `new_of_old[s]` is the new supervertex of old
    /// supervertex `s`, with new labels dense in `0..k`.
    ///
    /// This is the paper's cheap compact-graph: membership vectors of
    /// supervertices that merge are appended (moves of `Vec` buffers — the
    /// pointer operations of Fig. 1c), and the lookup table is rewritten
    /// through the composition `label[v] ← new_of_old[label[v]]`.
    pub fn compact(&mut self, new_of_old: &[u32], k: usize) {
        assert_eq!(new_of_old.len(), self.members.len());
        let mut new_members: Vec<Vec<u32>> = (0..k).map(|_| Vec::new()).collect();
        for (old, list) in self.members.drain(..).enumerate() {
            let tgt = &mut new_members[new_of_old[old] as usize];
            if tgt.is_empty() {
                // First contributor: adopt the buffer wholesale (pure move).
                *tgt = list;
            } else {
                tgt.extend_from_slice(&list);
            }
        }
        self.members = new_members;
        for l in self.label.iter_mut() {
            *l = new_of_old[*l as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 6-vertex example of the paper's Fig. 1 (0-indexed).
    fn fig1_graph() -> EdgeList {
        EdgeList::from_triples(
            6,
            vec![
                (0, 4, 1.0), // v1-v5
                (0, 1, 2.0), // v1-v2
                (1, 5, 3.0), // v2-v6
                (4, 2, 4.0), // v5-v3
                (2, 3, 5.0), // v3-v4
                (3, 5, 6.0), // v4-v6
            ],
        )
    }

    #[test]
    fn initial_state_is_identity() {
        let f = FlexAdjacencyList::new(&fig1_graph());
        assert_eq!(f.num_supervertices(), 6);
        for v in 0..6u32 {
            assert_eq!(f.supervertex_of(v), v);
            assert_eq!(f.members(v), &[v]);
        }
    }

    #[test]
    fn compact_merges_membership_like_fig1() {
        // After one Borůvka iteration on Fig. 1: {v1,v2,v3} and {v4,v5,v6}
        // i.e. 0-indexed {0,1,2} and {3,4,5}.
        let mut f = FlexAdjacencyList::new(&fig1_graph());
        let new_of_old = vec![0, 0, 0, 1, 1, 1];
        f.compact(&new_of_old, 2);
        assert_eq!(f.num_supervertices(), 2);
        let mut m0 = f.members(0).to_vec();
        m0.sort_unstable();
        assert_eq!(m0, vec![0, 1, 2]);
        assert_eq!(f.supervertex_of(4), 1);
    }

    #[test]
    fn incident_translates_and_filters_self_loops() {
        let mut f = FlexAdjacencyList::new(&fig1_graph());
        f.compact(&[0, 0, 0, 1, 1, 1], 2);
        // Supervertex 0 = {v1,v2,v3}: the cross edges are v1-v5 (id 0),
        // v2-v6 (id 2), v5-v3 (id 3), and v3-v4 (id 4); the internal edge
        // v1-v2 (id 1) must be filtered as a self-loop.
        let inc: Vec<(u32, f64, u32)> = f.incident(0).collect();
        let mut ids: Vec<u32> = inc.iter().map(|&(_, _, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2, 3, 4]);
        assert!(inc.iter().all(|&(s, _, _)| s == 1));
    }

    #[test]
    fn repeated_compaction_reaches_single_supervertex() {
        let mut f = FlexAdjacencyList::new(&fig1_graph());
        f.compact(&[0, 0, 0, 1, 1, 1], 2);
        f.compact(&[0, 0], 1);
        assert_eq!(f.num_supervertices(), 1);
        assert_eq!(f.incident(0).count(), 0, "everything is a self-loop now");
        let mut all = f.members(0).to_vec();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<u32>>());
    }
}
