//! The compact binary on-disk graph format (`.msfb`) and its zero-copy
//! loader.
//!
//! Text formats gate the scale leap: a 100M-edge DIMACS file is gigabytes
//! of decimal that must be re-parsed on every run. This format stores the
//! structure-of-arrays edge list directly, so loading is an `mmap` plus an
//! O(m) validation scan and the typed views (`u[]`, `v[]`, `w[]`) alias
//! the page cache with zero copies.
//!
//! ## Layout (little-endian, version 1)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "MSFBIN\r\n"  (the \r\n catches text-mode mangling)
//!      8     4  version          u32 = 1
//!     12     4  flags            u32   bit0 WIDE (u64 ids), bit1 WEIGHT_SORTED
//!     16     8  n                u64   vertex count
//!     24     8  m                u64   edge count
//!     32     8  fnv64(u array)   u64   FNV-1a over the raw array bytes
//!     40     8  fnv64(v array)   u64
//!     48     8  fnv64(w array)   u64
//!     56     8  fnv64(header)    u64   over bytes [0, 56) — the array
//!                                      checksums do not cover n/m/flags,
//!                                      so the header guards itself
//!     64     …  u array          m × (4 | 8) bytes, zero-padded to 8
//!      …     …  v array          m × (4 | 8) bytes, zero-padded to 8
//!      …     …  w array          m × 8 bytes (f64 bits)
//! ```
//!
//! Edge ids are implicit in position. Every array offset is a multiple of
//! 8, so the mapped views are always aligned. [`BinGraph::open`] validates
//! the header (magic, version, known flags, exact file size with
//! overflow-checked arithmetic), the three checksums, and every edge
//! (endpoints `< n`, no self-loops, finite weights) before returning —
//! a corrupt or hostile file is an `io::Error`, never UB and never a
//! downstream panic.
//!
//! The writer streams: `u` goes straight to the output file while `v` and
//! `w` spill to sibling temp files that are concatenated (and deleted) on
//! [`BinWriter::finish`], so emitting a graph needs O(1) memory no matter
//! how many edges — generators can produce out-of-core graphs directly.

pub mod bytes;

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::edgelist::{EdgeList, GraphBuildError};
use crate::soa::{GenericCsr, SoaEdgeList};
use crate::vertexid::VertexId;
use bytes::Bytes;
use msf_primitives::obs::metrics::{LazyCounter, LazyHistogram};

static INGEST_BIN_BYTES: LazyCounter = LazyCounter::new("ingest.bin.bytes");
static INGEST_BIN_EDGES: LazyCounter = LazyCounter::new("ingest.bin.edges");
static INGEST_BIN_WALL: LazyHistogram = LazyHistogram::new("ingest.bin.wall_ns");

/// The 8-byte magic at offset 0.
pub const MAGIC: [u8; 8] = *b"MSFBIN\r\n";
/// Current format version.
pub const VERSION: u32 = 1;
/// Header size in bytes; the `u` array starts here.
pub const HEADER_LEN: usize = 64;

/// `flags` bit 0: vertex ids are u64 (otherwise u32).
pub const FLAG_WIDE: u32 = 1 << 0;
/// `flags` bit 1: edges are stored in nondecreasing weight order.
pub const FLAG_WEIGHT_SORTED: u32 = 1 << 1;
const KNOWN_FLAGS: u32 = FLAG_WIDE | FLAG_WEIGHT_SORTED;

fn bad(msg: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Incremental FNV-1a (64-bit) — cheap, streaming, and good enough to catch
/// torn writes and bit rot; this is an integrity check, not authentication.
#[derive(Debug, Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut f = Fnv64::new();
    f.update(bytes);
    f.finish()
}

fn pad8(len: u64) -> u64 {
    len.div_ceil(8) * 8
}

/// Parsed, bounds-checked header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Vertex count.
    pub n: u64,
    /// Edge count.
    pub m: u64,
    /// Raw flags word.
    pub flags: u32,
    crc_u: u64,
    crc_v: u64,
    crc_w: u64,
}

impl Header {
    /// True when vertex ids are stored as u64.
    pub fn wide(&self) -> bool {
        self.flags & FLAG_WIDE != 0
    }

    /// True when edges are stored in nondecreasing weight order.
    pub fn weight_sorted(&self) -> bool {
        self.flags & FLAG_WEIGHT_SORTED != 0
    }

    fn id_width(&self) -> u64 {
        if self.wide() {
            8
        } else {
            4
        }
    }

    /// Exact file length this header demands (checked arithmetic: a
    /// hostile `m` cannot overflow into a bogus small expectation).
    fn expected_len(&self) -> std::io::Result<u64> {
        let arr = self
            .m
            .checked_mul(self.id_width())
            .ok_or_else(|| bad("edge count overflows the id array size"))?;
        let w = self
            .m
            .checked_mul(8)
            .ok_or_else(|| bad("edge count overflows the weight array size"))?;
        pad8(arr)
            .checked_mul(2)
            .and_then(|two| two.checked_add(w))
            .and_then(|payload| payload.checked_add(HEADER_LEN as u64))
            .ok_or_else(|| bad("declared sizes overflow the file length"))
    }

    fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..8].copy_from_slice(&MAGIC);
        h[8..12].copy_from_slice(&VERSION.to_le_bytes());
        h[12..16].copy_from_slice(&self.flags.to_le_bytes());
        h[16..24].copy_from_slice(&self.n.to_le_bytes());
        h[24..32].copy_from_slice(&self.m.to_le_bytes());
        h[32..40].copy_from_slice(&self.crc_u.to_le_bytes());
        h[40..48].copy_from_slice(&self.crc_v.to_le_bytes());
        h[48..56].copy_from_slice(&self.crc_w.to_le_bytes());
        let crc = fnv64(&h[0..56]);
        h[56..64].copy_from_slice(&crc.to_le_bytes());
        h
    }

    fn decode(h: &[u8]) -> std::io::Result<Header> {
        if h.len() < HEADER_LEN {
            return Err(bad(format!(
                "file too short for a header ({} bytes < {HEADER_LEN})",
                h.len()
            )));
        }
        let le32 = |o: usize| u32::from_le_bytes(h[o..o + 4].try_into().unwrap());
        let le64 = |o: usize| u64::from_le_bytes(h[o..o + 8].try_into().unwrap());
        if h[0..8] != MAGIC {
            return Err(bad("bad magic: not an msfb graph file"));
        }
        let version = le32(8);
        if version != VERSION {
            return Err(bad(format!(
                "unsupported format version {version} (this build reads {VERSION})"
            )));
        }
        let flags = le32(12);
        if flags & !KNOWN_FLAGS != 0 {
            return Err(bad(format!(
                "unknown flag bits {:#x}",
                flags & !KNOWN_FLAGS
            )));
        }
        if le64(56) != fnv64(&h[0..56]) {
            return Err(bad("header checksum mismatch (corrupt header)"));
        }
        Ok(Header {
            n: le64(16),
            m: le64(24),
            flags,
            crc_u: le64(32),
            crc_v: le64(40),
            crc_w: le64(48),
        })
    }
}

/// Streaming writer: push edges one at a time, O(1) memory.
///
/// Endpoint/self-loop/finiteness validation happens at `push`, so a
/// finished file always passes [`BinGraph::open`]'s scan. Weight-sortedness
/// is tracked as pushes happen and lands in the flags automatically.
pub struct BinWriter {
    out: BufWriter<File>,
    spill_v: BufWriter<File>,
    spill_w: BufWriter<File>,
    spill_v_path: PathBuf,
    spill_w_path: PathBuf,
    n: u64,
    m: u64,
    wide: bool,
    sorted: bool,
    last_w: f64,
    crc_u: Fnv64,
    crc_v: Fnv64,
    crc_w: Fnv64,
}

impl BinWriter {
    /// Create `path`, writing a graph over `n` vertices. `wide` selects
    /// u64 vertex ids; narrow files require `n ≤ 2³²`.
    pub fn create(path: impl AsRef<Path>, n: u64, wide: bool) -> std::io::Result<BinWriter> {
        let path = path.as_ref();
        if !wide && (n as u128) > <u32 as VertexId>::MAX_COUNT {
            return Err(bad(format!("{n} vertices do not fit u32 ids; use wide")));
        }
        let mut out = BufWriter::new(File::create(path)?);
        // Placeholder header; finish() seeks back and writes the real one.
        out.write_all(&[0u8; HEADER_LEN])?;
        let spill = |suffix: &str| -> std::io::Result<(PathBuf, BufWriter<File>)> {
            let p = path.with_extension(format!("msfb{suffix}"));
            Ok((p.clone(), BufWriter::new(File::create(p)?)))
        };
        let (spill_v_path, spill_v) = spill(".spill-v")?;
        let (spill_w_path, spill_w) = spill(".spill-w")?;
        Ok(BinWriter {
            out,
            spill_v,
            spill_w,
            spill_v_path,
            spill_w_path,
            n,
            m: 0,
            wide,
            sorted: true,
            last_w: f64::NEG_INFINITY,
            crc_u: Fnv64::new(),
            crc_v: Fnv64::new(),
            crc_w: Fnv64::new(),
        })
    }

    /// Validate and append one edge.
    pub fn push(&mut self, u: u64, v: u64, w: f64) -> std::io::Result<()> {
        let index = self.m as usize;
        if u >= self.n || v >= self.n {
            return Err(GraphBuildError::EndpointOutOfRange {
                index,
                endpoint: u.max(v),
                n: self.n,
            }
            .into());
        }
        if u == v {
            return Err(GraphBuildError::SelfLoop { index, vertex: u }.into());
        }
        if !w.is_finite() {
            return Err(GraphBuildError::NonFiniteWeight { index }.into());
        }
        if self.wide {
            let (ub, vb) = (u.to_le_bytes(), v.to_le_bytes());
            self.crc_u.update(&ub);
            self.crc_v.update(&vb);
            self.out.write_all(&ub)?;
            self.spill_v.write_all(&vb)?;
        } else {
            let (ub, vb) = ((u as u32).to_le_bytes(), (v as u32).to_le_bytes());
            self.crc_u.update(&ub);
            self.crc_v.update(&vb);
            self.out.write_all(&ub)?;
            self.spill_v.write_all(&vb)?;
        }
        let wb = w.to_le_bytes();
        self.crc_w.update(&wb);
        self.spill_w.write_all(&wb)?;
        if w < self.last_w {
            self.sorted = false;
        }
        self.last_w = w;
        self.m += 1;
        Ok(())
    }

    /// Edges pushed so far.
    pub fn len(&self) -> u64 {
        self.m
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Concatenate the spilled arrays, write the final header, and delete
    /// the temp files. Returns `(n, m, weight_sorted)`.
    pub fn finish(self) -> std::io::Result<(u64, u64, bool)> {
        let BinWriter {
            mut out,
            spill_v,
            spill_w,
            spill_v_path,
            spill_w_path,
            n,
            m,
            wide,
            sorted,
            crc_u,
            crc_v,
            crc_w,
            ..
        } = self;
        let width = if wide { 8u64 } else { 4 };
        let pad = (pad8(m * width) - m * width) as usize;
        out.write_all(&[0u8; 8][..pad])?;
        // Append v (padded), then w, streaming through a fixed buffer.
        let mut append = |spill: BufWriter<File>, path: &Path, pad: usize| -> std::io::Result<()> {
            let mut f = spill.into_inner().map_err(|e| e.into_error())?;
            f.flush()?;
            drop(f);
            let mut src = File::open(path)?;
            std::io::copy(&mut src, &mut out)?;
            out.write_all(&[0u8; 8][..pad])?;
            Ok(())
        };
        append(spill_v, &spill_v_path, pad)?;
        append(spill_w, &spill_w_path, 0)?;
        let flags = if wide { FLAG_WIDE } else { 0 }
            | if sorted && m > 0 {
                FLAG_WEIGHT_SORTED
            } else {
                0
            };
        let header = Header {
            n,
            m,
            flags,
            crc_u: crc_u.finish(),
            crc_v: crc_v.finish(),
            crc_w: crc_w.finish(),
        };
        out.seek(SeekFrom::Start(0))?;
        out.write_all(&header.encode())?;
        out.flush()?;
        std::fs::remove_file(&spill_v_path).ok();
        std::fs::remove_file(&spill_w_path).ok();
        Ok((n, m, header.weight_sorted()))
    }
}

/// Write an in-memory edge list as a narrow binary file.
pub fn write_binary(g: &EdgeList, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut w = BinWriter::create(path, g.num_vertices() as u64, false)?;
    for e in g.edges() {
        w.push(u64::from(e.u), u64::from(e.v), e.w)?;
    }
    w.finish()?;
    Ok(())
}

/// Stream `(u, v, w)` triples into a binary file — the out-of-core path
/// the RMAT/power-law generators use. Returns the edge count written.
pub fn write_stream(
    path: impl AsRef<Path>,
    n: u64,
    wide: bool,
    edges: impl IntoIterator<Item = (u64, u64, f64)>,
) -> std::io::Result<u64> {
    let mut w = BinWriter::create(path, n, wide)?;
    for (u, v, wt) in edges {
        w.push(u, v, wt)?;
    }
    let (_, m, _) = w.finish()?;
    Ok(m)
}

/// A validated, memory-mapped binary graph. All accessors are zero-copy
/// views into the mapping.
pub struct BinGraph {
    map: Bytes,
    header: Header,
}

impl std::fmt::Debug for BinGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinGraph")
            .field("header", &self.header)
            .field("mmap", &self.map.is_mmap())
            .finish()
    }
}

impl BinGraph {
    /// Open and fully validate `path`. See the module docs for what is
    /// checked; after `open` succeeds every view is a valid simple-graph
    /// edge array with finite weights.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<BinGraph> {
        let start = std::time::Instant::now();
        let mut file = File::open(path)?;
        let map = Bytes::from_file(&mut file)?;
        let g = Self::validate(map)?;
        INGEST_BIN_BYTES.add(g.map.as_slice().len() as u64);
        INGEST_BIN_EDGES.add(g.header.m);
        INGEST_BIN_WALL.record(start.elapsed().as_nanos() as u64);
        Ok(g)
    }

    fn validate(map: Bytes) -> std::io::Result<BinGraph> {
        let data = map.as_slice();
        let header = Header::decode(data)?;
        let expected = header.expected_len()?;
        if data.len() as u64 != expected {
            return Err(bad(format!(
                "file is {} bytes but the header demands {expected}",
                data.len()
            )));
        }
        let g = BinGraph { map, header };
        let data = g.map.as_slice();
        let (ur, vr, wr) = g.ranges();
        if fnv64(&data[ur.clone()]) != g.header.crc_u {
            return Err(bad("u array checksum mismatch (corrupt file)"));
        }
        if fnv64(&data[vr.clone()]) != g.header.crc_v {
            return Err(bad("v array checksum mismatch (corrupt file)"));
        }
        if fnv64(&data[wr.clone()]) != g.header.crc_w {
            return Err(bad("w array checksum mismatch (corrupt file)"));
        }
        // Element-wise validation: endpoints in range, no self-loops,
        // finite weights. One sequential pass over the mapping.
        if g.header.wide() {
            g.scan_endpoints::<u64>()?;
        } else {
            g.scan_endpoints::<u32>()?;
        }
        for (i, w) in bytes::cast_slice::<f64>(&g.map.as_slice()[wr])?
            .iter()
            .enumerate()
        {
            if !w.is_finite() {
                return Err(GraphBuildError::NonFiniteWeight { index: i }.into());
            }
        }
        Ok(g)
    }

    fn scan_endpoints<V: VertexId>(&self) -> std::io::Result<()> {
        let (us, vs) = self
            .endpoints::<V>()
            .expect("scan width matches header width");
        let n = self.header.n;
        for i in 0..us.len() {
            let (u, v) = (us[i].to_u64(), vs[i].to_u64());
            if u >= n || v >= n {
                return Err(GraphBuildError::EndpointOutOfRange {
                    index: i,
                    endpoint: u.max(v),
                    n,
                }
                .into());
            }
            if u == v {
                return Err(GraphBuildError::SelfLoop {
                    index: i,
                    vertex: u,
                }
                .into());
            }
        }
        Ok(())
    }

    /// Byte ranges of the three arrays (pads excluded).
    fn ranges(
        &self,
    ) -> (
        std::ops::Range<usize>,
        std::ops::Range<usize>,
        std::ops::Range<usize>,
    ) {
        let width = self.header.id_width();
        let arr = (self.header.m * width) as usize;
        let padded = pad8(self.header.m * width) as usize;
        let wlen = (self.header.m * 8) as usize;
        let u0 = HEADER_LEN;
        let v0 = u0 + padded;
        let w0 = v0 + padded;
        (u0..u0 + arr, v0..v0 + arr, w0..w0 + wlen)
    }

    /// The header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Vertex count.
    pub fn num_vertices(&self) -> u64 {
        self.header.n
    }

    /// Edge count.
    pub fn num_edges(&self) -> u64 {
        self.header.m
    }

    /// True when ids are stored wide (u64).
    pub fn wide(&self) -> bool {
        self.header.wide()
    }

    /// True when the backing is a real memory map.
    pub fn is_mmap(&self) -> bool {
        self.map.is_mmap()
    }

    /// Zero-copy endpoint arrays at width `V`; `None` when the file's width
    /// differs (no silent widening — callers pick the typed path).
    pub fn endpoints<V: VertexId>(&self) -> Option<(&[V], &[V])> {
        if V::WIDE != self.header.wide() {
            return None;
        }
        let (ur, vr, _) = self.ranges();
        let data = self.map.as_slice();
        // Infallible after validate(): ranges are 8-aligned and sized.
        let us = bytes::cast_slice::<V>(&data[ur]).expect("validated array");
        let vs = bytes::cast_slice::<V>(&data[vr]).expect("validated array");
        Some((us, vs))
    }

    /// Zero-copy weight array.
    pub fn weights(&self) -> &[f64] {
        let (_, _, wr) = self.ranges();
        bytes::cast_slice::<f64>(&self.map.as_slice()[wr]).expect("validated array")
    }

    /// Edge `i` as widened `(u, v, w)`, any width.
    pub fn edge(&self, i: usize) -> (u64, u64, f64) {
        let w = self.weights()[i];
        if let Some((us, vs)) = self.endpoints::<u32>() {
            (u64::from(us[i]), u64::from(vs[i]), w)
        } else {
            let (us, vs) = self.endpoints::<u64>().expect("one width matches");
            (us[i], vs[i], w)
        }
    }

    /// Iterate all edges as widened triples in id order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (u64, u64, f64)> + '_> {
        let ws = self.weights();
        if let Some((us, vs)) = self.endpoints::<u32>() {
            Box::new((0..ws.len()).map(move |i| (u64::from(us[i]), u64::from(vs[i]), ws[i])))
        } else {
            let (us, vs) = self.endpoints::<u64>().expect("one width matches");
            Box::new((0..ws.len()).map(move |i| (us[i], vs[i], ws[i])))
        }
    }

    /// Materialize the AoS [`EdgeList`] the compute kernels consume. Works
    /// for wide files too as long as `n` and `m` fit the u32 id space.
    pub fn to_edge_list(&self) -> std::io::Result<EdgeList> {
        let mut b = crate::edgelist::EdgeListBuilder::with_capacity(
            usize::try_from(self.header.n)
                .map_err(|_| bad("vertex count exceeds the address space"))?,
            usize::try_from(self.header.m)
                .map_err(|_| bad("edge count exceeds the address space"))?,
        )
        .map_err(std::io::Error::from)?;
        for (u, v, w) in self.iter() {
            b.try_push(u, v, w).map_err(std::io::Error::from)?;
        }
        Ok(b.finish())
    }

    /// Materialize a [`SoaEdgeList`] at the file's width.
    pub fn to_soa<V: VertexId>(&self) -> std::io::Result<SoaEdgeList<V>> {
        let (us, vs) = self
            .endpoints::<V>()
            .ok_or_else(|| bad("requested width does not match the file"))?;
        let mut s = SoaEdgeList::<V>::with_capacity(self.header.n, us.len())
            .map_err(std::io::Error::from)?;
        let ws = self.weights();
        for i in 0..us.len() {
            s.try_push(us[i].to_u64(), vs[i].to_u64(), ws[i])
                .map_err(std::io::Error::from)?;
        }
        Ok(s)
    }

    /// Build the CSR adjacency structure straight from the mapped arrays
    /// (no intermediate edge list).
    pub fn to_csr<V: VertexId>(&self) -> std::io::Result<GenericCsr<V>> {
        let (us, vs) = self
            .endpoints::<V>()
            .ok_or_else(|| bad("requested width does not match the file"))?;
        GenericCsr::from_arrays(self.header.n, us, vs, self.weights()).map_err(std::io::Error::from)
    }
}

/// Sniff whether `path` starts with the binary magic (used by the CLI to
/// auto-detect formats).
pub fn is_binary_file(path: impl AsRef<Path>) -> std::io::Result<bool> {
    let mut f = File::open(path)?;
    let mut head = [0u8; 8];
    match f.read_exact(&mut head) {
        Ok(()) => Ok(head == MAGIC),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_graph, GeneratorConfig};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("msf-binfmt-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trips_an_edge_list() {
        let g = random_graph(&GeneratorConfig::with_seed(4), 80, 200);
        let path = tmp("roundtrip.msfb");
        write_binary(&g, &path).unwrap();
        let bin = BinGraph::open(&path).unwrap();
        assert_eq!(bin.num_vertices(), 80);
        assert_eq!(bin.num_edges(), 200);
        assert!(!bin.wide());
        assert_eq!(bin.to_edge_list().unwrap(), g);
        assert!(is_binary_file(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wide_files_round_trip_and_interconvert() {
        let g = random_graph(&GeneratorConfig::with_seed(6), 50, 120);
        let path = tmp("wide.msfb");
        write_stream(
            &path,
            50,
            true,
            g.edges()
                .iter()
                .map(|e| (u64::from(e.u), u64::from(e.v), e.w)),
        )
        .unwrap();
        let bin = BinGraph::open(&path).unwrap();
        assert!(bin.wide());
        assert!(bin.endpoints::<u32>().is_none());
        assert!(bin.endpoints::<u64>().is_some());
        assert_eq!(bin.to_edge_list().unwrap(), g);
        let soa = bin.to_soa::<u64>().unwrap();
        assert_eq!(soa.to_edge_list().unwrap(), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weight_sorted_flag_tracks_push_order() {
        let path = tmp("sorted.msfb");
        let mut w = BinWriter::create(&path, 4, false).unwrap();
        w.push(0, 1, 1.0).unwrap();
        w.push(1, 2, 2.0).unwrap();
        w.push(2, 3, 3.0).unwrap();
        let (_, _, sorted) = w.finish().unwrap();
        assert!(sorted);
        assert!(BinGraph::open(&path).unwrap().header().weight_sorted());
        let mut w = BinWriter::create(&path, 4, false).unwrap();
        w.push(0, 1, 2.0).unwrap();
        w.push(1, 2, 1.0).unwrap();
        let (_, _, sorted) = w.finish().unwrap();
        assert!(!sorted);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_validates_pushes() {
        let path = tmp("validate.msfb");
        let mut w = BinWriter::create(&path, 3, false).unwrap();
        assert!(w.push(0, 3, 1.0).is_err(), "endpoint out of range");
        assert!(w.push(1, 1, 1.0).is_err(), "self-loop");
        assert!(w.push(0, 1, f64::NAN).is_err(), "nan weight");
        assert!(w.push(0, 1, f64::INFINITY).is_err(), "inf weight");
        w.push(0, 1, 1.0).unwrap();
        w.finish().unwrap();
        assert!(
            BinWriter::create(&path, 1 << 33, false).is_err(),
            "narrow cap"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corruption() {
        let g = random_graph(&GeneratorConfig::with_seed(8), 30, 60);
        let path = tmp("corrupt.msfb");
        write_binary(&g, &path).unwrap();
        let good = std::fs::read(&path).unwrap();
        let reject = |mutate: &dyn Fn(&mut Vec<u8>), why: &str| {
            let mut bytes = good.clone();
            mutate(&mut bytes);
            std::fs::write(&path, &bytes).unwrap();
            assert!(BinGraph::open(&path).is_err(), "must reject: {why}");
        };
        reject(&|b| b[0] = b'X', "bad magic");
        reject(&|b| b[8] = 9, "bad version");
        reject(&|b| b[12] |= 0x80, "unknown flag");
        reject(&|b| b[60] = 1, "tampered header checksum");
        reject(&|b| b[17] ^= 0x80, "tampered vertex count");
        reject(&|b| b.truncate(40), "truncated header");
        reject(&|b| b.truncate(b.len() - 8), "truncated payload");
        reject(&|b| b.extend_from_slice(&[0; 8]), "trailing garbage");
        reject(&|b| b[24] = 0xFF, "edge count vs file size");
        // n smaller than a stored endpoint: the endpoint scan must fire
        // (pick n = 1 so every edge is out of range).
        reject(
            &|b| {
                b[16..24].copy_from_slice(&1u64.to_le_bytes());
            },
            "endpoint >= n",
        );
        // Flip one payload byte: a checksum must catch it.
        reject(&|b| *b.last_mut().unwrap() ^= 0x01, "weight bit flip");
        reject(&|b| b[HEADER_LEN] ^= 0x01, "endpoint bit flip");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_nan_weight_with_fixed_checksum() {
        // A corrupt file whose checksums are *valid* but whose weight is
        // NaN must still be rejected by the finiteness scan.
        let path = tmp("nan.msfb");
        let mut w = BinWriter::create(&path, 2, false).unwrap();
        w.push(0, 1, 1.0).unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let wlen = bytes.len();
        bytes[wlen - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
        let crc = fnv64(&bytes[wlen - 8..]);
        bytes[48..56].copy_from_slice(&crc.to_le_bytes());
        let hcrc = fnv64(&bytes[0..56]);
        bytes[56..64].copy_from_slice(&hcrc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = BinGraph::open(&path).unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_round_trips() {
        let path = tmp("empty.msfb");
        let w = BinWriter::create(&path, 5, false).unwrap();
        w.finish().unwrap();
        let bin = BinGraph::open(&path).unwrap();
        assert_eq!(bin.num_vertices(), 5);
        assert_eq!(bin.num_edges(), 0);
        assert!(!bin.header().weight_sorted());
        assert_eq!(bin.to_edge_list().unwrap().num_edges(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_from_mapping_matches_adjacency_array() {
        let g = random_graph(&GeneratorConfig::with_seed(13), 40, 100);
        let path = tmp("csr.msfb");
        write_binary(&g, &path).unwrap();
        let bin = BinGraph::open(&path).unwrap();
        let csr = bin.to_csr::<u32>().unwrap();
        let reference = crate::adjacency::AdjacencyArray::from_edge_list(&g);
        assert_eq!(csr.num_directed_edges(), reference.num_directed_edges());
        for v in 0..40u32 {
            let (t, w, i) = csr.row(u64::from(v));
            let (rt, rw, ri) = reference.row(v);
            assert_eq!((t, w, i), (rt, rw, ri));
        }
        std::fs::remove_file(&path).ok();
    }
}
