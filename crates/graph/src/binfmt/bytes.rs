//! Read-only byte backing for the binary graph format: `mmap(2)` where
//! available, an aligned heap buffer otherwise.
//!
//! This is the only module in `msf-graph` that uses `unsafe`: the mmap
//! syscall surface (declared directly against the platform C library that
//! `std` already links — no external crate) and the byte→typed-slice casts
//! behind the zero-copy views. Every cast checks alignment and length, and
//! both backings guarantee 8-byte base alignment (pages are page-aligned;
//! the heap fallback allocates `u64`s), so the casts are total for the
//! format's 8-byte-aligned array offsets.

#![allow(unsafe_code)]

use std::fs::File;
use std::io::Read;

/// Read-only bytes of a whole file, memory-mapped when possible.
pub struct Bytes {
    inner: Inner,
}

enum Inner {
    #[cfg(unix)]
    Mmap { ptr: *mut u8, len: usize },
    /// 8-byte-aligned heap copy (`Vec<u64>` backing; `len` is in bytes).
    Heap { buf: Vec<u64>, len: usize },
}

// The mapping is immutable and private for its whole lifetime.
unsafe impl Send for Bytes {}
unsafe impl Sync for Bytes {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Bytes {
    /// Map `file` read-only. Falls back to an aligned heap read when the
    /// platform has no mmap, the file is empty (zero-length maps are
    /// invalid), or `MSF_NO_MMAP=1` forces the portable path.
    pub fn from_file(file: &mut File) -> std::io::Result<Bytes> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file larger than the address space",
            )
        })?;
        if len > 0 && !no_mmap_env() {
            #[cfg(unix)]
            {
                use std::os::unix::io::AsRawFd;
                // SAFETY: fd is a valid open file descriptor, len is its
                // exact size, and PROT_READ|MAP_PRIVATE never aliases
                // writable memory. Failure returns MAP_FAILED, checked.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr != usize::MAX as *mut std::os::raw::c_void && !ptr.is_null() {
                    return Ok(Bytes {
                        inner: Inner::Mmap {
                            ptr: ptr.cast(),
                            len,
                        },
                    });
                }
                // fall through to the heap read on mmap failure
            }
        }
        Self::heap_from_file(file, len)
    }

    /// Portable backing: read the whole file into an 8-byte-aligned buffer.
    pub fn heap_from_file(file: &mut File, len: usize) -> std::io::Result<Bytes> {
        let words = len.div_ceil(8);
        let mut buf = vec![0u64; words];
        // SAFETY: a Vec<u64> of `words` elements owns `words * 8 >= len`
        // initialized bytes; viewing them as &mut [u8] is a plain
        // transmute of POD data with a smaller alignment requirement.
        let dst = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
        file.read_exact(dst)?;
        Ok(Bytes {
            inner: Inner::Heap { buf, len },
        })
    }

    /// True when this backing is a real memory map (used by tests to prove
    /// both paths are exercised).
    pub fn is_mmap(&self) -> bool {
        match self.inner {
            #[cfg(unix)]
            Inner::Mmap { .. } => true,
            Inner::Heap { .. } => false,
        }
    }

    /// The bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mmap { ptr, len } => {
                // SAFETY: the mapping is PROT_READ, private, lives until
                // Drop, and spans exactly `len` bytes.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Inner::Heap { buf, len } => {
                // SAFETY: as in heap_from_file — POD view of owned bytes.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len) }
            }
        }
    }
}

impl Drop for Bytes {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mmap { ptr, len } = self.inner {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            unsafe {
                sys::munmap(ptr.cast(), len);
            }
        }
    }
}

fn no_mmap_env() -> bool {
    std::env::var_os("MSF_NO_MMAP").is_some_and(|v| v == "1")
}

/// Plain-old-data element types the zero-copy views may cast to. Sealed to
/// the three the format stores.
pub trait Pod: Copy + 'static {
    #[doc(hidden)]
    fn __seal(_: private::Token) {}
}
mod private {
    pub struct Token;
}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for f64 {}

/// View `bytes` as a slice of `T`, checking length divisibility and
/// alignment (both backings are 8-byte aligned at base, so any offset that
/// is a multiple of `align_of::<T>()` stays aligned).
pub fn cast_slice<T: Pod>(bytes: &[u8]) -> std::io::Result<&[T]> {
    let size = std::mem::size_of::<T>();
    if !bytes.len().is_multiple_of(size) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "array of {} bytes is not a whole number of elements",
                bytes.len()
            ),
        ));
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "array is not aligned for its element type",
        ));
    }
    // SAFETY: T is POD (sealed), length and alignment were just checked,
    // and the returned lifetime borrows the backing bytes.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_and_reads_a_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("msf-bytes-test-{}", std::process::id()));
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9])
            .unwrap();
        let mut f = File::open(&path).unwrap();
        let b = Bytes::from_file(&mut f).unwrap();
        assert_eq!(b.as_slice(), &[1u8, 2, 3, 4, 5, 6, 7, 8, 9]);
        // The heap path must agree byte for byte.
        let mut f = File::open(&path).unwrap();
        let h = Bytes::heap_from_file(&mut f, 9).unwrap();
        assert!(!h.is_mmap());
        assert_eq!(h.as_slice(), b.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_fine() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("msf-bytes-empty-{}", std::process::id()));
        std::fs::File::create(&path).unwrap();
        let mut f = File::open(&path).unwrap();
        let b = Bytes::from_file(&mut f).unwrap();
        assert!(b.as_slice().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn casts_check_length_and_alignment() {
        let backing = vec![0u64; 4];
        // SAFETY-free view through the public API: build Bytes by hand.
        let b = Bytes {
            inner: Inner::Heap {
                buf: backing,
                len: 32,
            },
        };
        let s = b.as_slice();
        assert_eq!(cast_slice::<u32>(s).unwrap().len(), 8);
        assert_eq!(cast_slice::<u64>(s).unwrap().len(), 4);
        assert_eq!(cast_slice::<f64>(s).unwrap().len(), 4);
        assert!(cast_slice::<u64>(&s[..12]).is_err(), "length check");
        assert!(cast_slice::<u64>(&s[4..12]).is_err(), "alignment check");
    }
}
