//! Weighted edges and the total order that makes the MSF unique.

/// An undirected weighted edge. `id` is the edge's index in the input graph
/// and survives every contraction, so algorithm outputs always refer to
/// input edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// First endpoint.
    pub u: u32,
    /// Second endpoint.
    pub v: u32,
    /// Weight. Must be finite (generators only emit finite weights; the
    /// builders assert it).
    pub w: f64,
    /// Stable input edge id.
    pub id: u32,
}

impl Edge {
    /// Construct an edge, normalizing nothing — direction is meaningful to
    /// some internal phases.
    #[inline]
    pub fn new(u: u32, v: u32, w: f64, id: u32) -> Self {
        debug_assert!(w.is_finite(), "edge weights must be finite");
        Edge { u, v, w, id }
    }

    /// The total-order key of this edge: weight first, input id as the tie
    /// breaker. With this key the minimum spanning forest is unique even
    /// when weights collide, which is what lets the test suite demand exact
    /// edge-set agreement across all algorithms (the paper's proofs assume
    /// distinct weights w.l.o.g.; this realizes that assumption).
    #[inline]
    pub fn key(&self) -> EdgeKey {
        EdgeKey {
            w: OrderedWeight(self.w),
            id: self.id,
        }
    }

    /// The endpoint that is not `x` (panics in debug if `x` is neither).
    #[inline]
    pub fn other(&self, x: u32) -> u32 {
        debug_assert!(x == self.u || x == self.v);
        self.u ^ self.v ^ x
    }
}

/// Finite `f64` with a total order. Constructing one from NaN is a logic
/// error; comparisons would panic in debug builds via the `expect`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedWeight(pub f64);

impl Eq for OrderedWeight {}

impl PartialOrd for OrderedWeight {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedWeight {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("edge weights are finite, so never NaN")
    }
}

/// Total-order edge key `(weight, id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeKey {
    /// Primary: the weight.
    pub w: OrderedWeight,
    /// Tie breaker: the stable input edge id.
    pub id: u32,
}

impl EdgeKey {
    /// The key that compares greater than every real edge key.
    pub const MAX: EdgeKey = EdgeKey {
        w: OrderedWeight(f64::INFINITY),
        id: u32::MAX,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_orders_by_weight_then_id() {
        let a = Edge::new(0, 1, 1.0, 5);
        let b = Edge::new(2, 3, 1.0, 2);
        let c = Edge::new(4, 5, 0.5, 9);
        assert!(c.key() < b.key());
        assert!(b.key() < a.key());
        assert_eq!(a.key(), a.key());
    }

    #[test]
    fn other_endpoint() {
        let e = Edge::new(3, 7, 1.0, 0);
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
    }

    #[test]
    fn max_key_dominates() {
        let e = Edge::new(0, 1, f64::MAX, u32::MAX - 1);
        assert!(e.key() < EdgeKey::MAX);
    }

    #[test]
    fn ordered_weight_sorts_negatives_and_zero() {
        let mut v = [
            OrderedWeight(0.0),
            OrderedWeight(-1.5),
            OrderedWeight(2.0),
            OrderedWeight(-0.0),
        ];
        v.sort();
        assert_eq!(v[0], OrderedWeight(-1.5));
        assert_eq!(v[3], OrderedWeight(2.0));
    }
}
