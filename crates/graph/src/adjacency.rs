//! Cache-friendly adjacency arrays (CSR).
//!
//! The paper uses "the more cache-friendly adjacency arrays" (citing Park,
//! Penner & Prasanna) instead of pointer-linked adjacency lists: one index
//! array of `n + 1` offsets into flat target/weight/id arrays holding both
//! directions of every edge.

use crate::edge::Edge;
use crate::edgelist::EdgeList;

/// Compressed sparse row adjacency structure. Immutable once built; the
/// Borůvka variants build fresh (smaller) ones per iteration, while Bor-FAL
/// keeps the original untouched for the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdjacencyArray {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    ids: Vec<u32>,
}

impl AdjacencyArray {
    /// Build from an edge list (both directions of each edge are laid out).
    pub fn from_edge_list(g: &EdgeList) -> Self {
        Self::from_edges(g.num_vertices(), g.edges())
    }

    /// Build from undirected edges over `0..n` (counting sort by source).
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut counts = vec![0usize; n + 1];
        for e in edges {
            counts[e.u as usize] += 1;
            counts[e.v as usize] += 1;
        }
        // counts has n+1 entries with counts[n] == 0, so the exclusive scan
        // leaves the total in the final slot: counts becomes the offsets.
        let total = msf_primitives::prefix::exclusive_scan(&mut counts);
        let offsets = counts;
        // `cursor` clones the start offsets and advances as rows fill.
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; total];
        let mut weights = vec![0f64; total];
        let mut ids = vec![0u32; total];
        for e in edges {
            for (src, dst) in [(e.u, e.v), (e.v, e.u)] {
                let slot = cursor[src as usize];
                cursor[src as usize] += 1;
                targets[slot] = dst;
                weights[slot] = e.w;
                ids[slot] = e.id;
            }
        }
        AdjacencyArray {
            offsets,
            targets,
            weights,
            ids,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed entries (2m for an undirected graph).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The row of `v` as parallel slices `(targets, weights, ids)`.
    #[inline]
    pub fn row(&self, v: u32) -> (&[u32], &[f64], &[u32]) {
        let (lo, hi) = (self.offsets[v as usize], self.offsets[v as usize + 1]);
        (
            &self.targets[lo..hi],
            &self.weights[lo..hi],
            &self.ids[lo..hi],
        )
    }

    /// Iterate `(neighbor, weight, edge id)` over `v`'s incident edges.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, f64, u32)> + '_ {
        let (t, w, i) = self.row(v);
        t.iter()
            .zip(w.iter())
            .zip(i.iter())
            .map(|((&t, &w), &i)| (t, w, i))
    }

    /// The row offsets array (length n + 1).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> EdgeList {
        EdgeList::from_triples(4, vec![(0, 1, 0.5), (1, 2, 1.5), (2, 3, 2.5)])
    }

    #[test]
    fn builds_csr_with_both_directions() {
        let csr = AdjacencyArray::from_edge_list(&path4());
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_directed_edges(), 6);
        assert_eq!(csr.degree(0), 1);
        assert_eq!(csr.degree(1), 2);
        assert_eq!(csr.degree(3), 1);
        let n1: Vec<_> = csr.neighbors(1).collect();
        assert_eq!(n1, vec![(0, 0.5, 0), (2, 1.5, 1)]);
    }

    #[test]
    fn rows_partition_the_entry_space() {
        let csr = AdjacencyArray::from_edge_list(&path4());
        let total: usize = (0..4).map(|v| csr.degree(v)).sum();
        assert_eq!(total, csr.num_directed_edges());
        assert_eq!(csr.offsets().first(), Some(&0));
        assert_eq!(csr.offsets().last(), Some(&6));
    }

    #[test]
    fn isolated_vertices_have_empty_rows() {
        let g = EdgeList::from_triples(5, vec![(0, 4, 1.0)]);
        let csr = AdjacencyArray::from_edge_list(&g);
        for v in 1..4 {
            assert_eq!(csr.degree(v), 0);
            assert_eq!(csr.neighbors(v).count(), 0);
        }
        assert_eq!(csr.degree(0), 1);
        assert_eq!(csr.degree(4), 1);
    }

    #[test]
    fn multi_edges_are_kept_distinct() {
        // Two parallel edges with different weights/ids between 0 and 1.
        let edges = vec![Edge::new(0, 1, 1.0, 0), Edge::new(0, 1, 2.0, 1)];
        let csr = AdjacencyArray::from_edges(2, &edges);
        assert_eq!(csr.degree(0), 2);
        let ids: Vec<u32> = csr.neighbors(0).map(|(_, _, id)| id).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
