//! The paper's input-graph suite (§5.1).
//!
//! * [`random_graph`] — `G(n, m)`: m unique random edges, uniform weights
//!   (the LEDA-style construction the paper describes).
//! * [`mesh2d`], [`mesh2d_random`], [`mesh3d_random`] — regular and
//!   irregular meshes; `2D60` keeps each mesh edge with probability 0.6 and
//!   `3D40` with probability 0.4.
//! * [`geometric_knn`] — fixed-degree geometric graphs (Moret & Shapiro):
//!   k nearest neighbors of uniform random points, distance weights.
//! * [`structured`] — Chung & Condon's degenerate recursive trees
//!   `str0..str3`, the worst cases for Borůvka-style algorithms.

mod geometric;
mod mesh;
mod powerlaw;
mod random;
mod rmat;
mod structured;
mod weights;

pub use geometric::geometric_knn;
pub use mesh::{mesh2d, mesh2d_random, mesh3d_random};
pub use powerlaw::{
    powerlaw_edges, powerlaw_from, powerlaw_graph, powerlaw_to_binary, PowerLawConfig,
};
pub use random::random_graph;
pub use rmat::{rmat_edges, rmat_graph, rmat_graph500, rmat_to_binary, RmatConfig};
pub use structured::{structured, StructuredKind};
pub use weights::{assign_weights, WeightScheme};

/// Seeding for reproducible generator output.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// PRNG seed; equal seeds give byte-identical graphs.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Config with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        GeneratorConfig { seed }
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig { seed: 0x5EED }
    }
}

/// A named instance of every generator class at a common scale — the cross
/// product the paper's Fig. 3 ranks sequential algorithms over. Used by the
/// benchmark harness and integration tests.
pub fn standard_suite(cfg: &GeneratorConfig, n: usize) -> Vec<(String, crate::EdgeList)> {
    let side = (n as f64).sqrt().round() as usize;
    let side3 = (n as f64).cbrt().round() as usize;
    vec![
        ("random-2n".into(), random_graph(cfg, n, 2 * n)),
        ("random-6n".into(), random_graph(cfg, n, 6 * n)),
        ("mesh".into(), mesh2d(cfg, side, side)),
        ("2D60".into(), mesh2d_random(cfg, side, side, 0.6)),
        ("3D40".into(), mesh3d_random(cfg, side3, side3, side3, 0.4)),
        ("geometric-k6".into(), geometric_knn(cfg, n, 6)),
        ("str0".into(), structured(cfg, StructuredKind::Str0, n)),
        ("str1".into(), structured(cfg, StructuredKind::Str1, n)),
        ("str2".into(), structured(cfg, StructuredKind::Str2, n)),
        ("str3".into(), structured(cfg, StructuredKind::Str3, n)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_is_complete_and_valid() {
        let cfg = GeneratorConfig::with_seed(3);
        let suite = standard_suite(&cfg, 256);
        assert_eq!(suite.len(), 10);
        for (name, g) in &suite {
            assert!(g.num_vertices() > 0, "{name} empty");
            assert!(g.num_edges() > 0, "{name} has no edges");
            crate::validate::check_simple(g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
