//! Regular and irregular mesh graphs (paper §5.1): the 2D mesh used by
//! physics simulations and computer vision, and the `2D60` / `3D40`
//! irregular variants where each potential mesh edge is present with a fixed
//! probability. All edge weights are uniformly random, as in the paper.

use rand::prelude::*;
use rand::rngs::StdRng;

use super::GeneratorConfig;
use crate::edgelist::EdgeList;

/// Regular `rows × cols` 2D mesh: every vertex connects to its existing
/// 4-neighborhood; uniform random weights.
pub fn mesh2d(cfg: &GeneratorConfig, rows: usize, cols: usize) -> EdgeList {
    mesh2d_random(cfg, rows, cols, 1.0)
}

/// 2D mesh where each candidate edge is kept with probability `p`
/// (`p = 0.6` is the paper's `2D60`).
pub fn mesh2d_random(cfg: &GeneratorConfig, rows: usize, cols: usize, p: f64) -> EdgeList {
    assert!((0.0..=1.0).contains(&p));
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x2d2d);
    let mut triples = Vec::with_capacity((2.0 * n as f64 * p) as usize + 16);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen::<f64>() < p {
                triples.push((id(r, c), id(r, c + 1), rng.gen::<f64>()));
            }
            if r + 1 < rows && rng.gen::<f64>() < p {
                triples.push((id(r, c), id(r + 1, c), rng.gen::<f64>()));
            }
        }
    }
    EdgeList::from_triples(n, triples)
}

/// 3D mesh (`x × y × z`) where each candidate edge is kept with probability
/// `p` (`p = 0.4` is the paper's `3D40`).
pub fn mesh3d_random(cfg: &GeneratorConfig, x: usize, y: usize, z: usize, p: f64) -> EdgeList {
    assert!((0.0..=1.0).contains(&p));
    let n = x * y * z;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x3d3d);
    let mut triples = Vec::with_capacity((3.0 * n as f64 * p) as usize + 16);
    let id = |i: usize, j: usize, k: usize| (i * y * z + j * z + k) as u32;
    for i in 0..x {
        for j in 0..y {
            for k in 0..z {
                if k + 1 < z && rng.gen::<f64>() < p {
                    triples.push((id(i, j, k), id(i, j, k + 1), rng.gen::<f64>()));
                }
                if j + 1 < y && rng.gen::<f64>() < p {
                    triples.push((id(i, j, k), id(i, j + 1, k), rng.gen::<f64>()));
                }
                if i + 1 < x && rng.gen::<f64>() < p {
                    triples.push((id(i, j, k), id(i + 1, j, k), rng.gen::<f64>()));
                }
            }
        }
    }
    EdgeList::from_triples(n, triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{check_simple, component_count};

    #[test]
    fn regular_mesh_edge_count() {
        // rows*(cols-1) + (rows-1)*cols horizontal+vertical edges.
        let g = mesh2d(&GeneratorConfig::with_seed(0), 10, 7);
        assert_eq!(g.num_vertices(), 70);
        assert_eq!(g.num_edges(), 10 * 6 + 9 * 7);
        check_simple(&g).unwrap();
        assert_eq!(component_count(&g), 1, "a full mesh is connected");
    }

    #[test]
    fn degenerate_meshes() {
        let line = mesh2d(&GeneratorConfig::with_seed(0), 1, 5);
        assert_eq!(line.num_edges(), 4);
        let dot = mesh2d(&GeneratorConfig::with_seed(0), 1, 1);
        assert_eq!(dot.num_edges(), 0);
    }

    #[test]
    fn probabilistic_mesh_keeps_roughly_p_fraction() {
        let full = mesh2d(&GeneratorConfig::with_seed(5), 100, 100).num_edges() as f64;
        let g = mesh2d_random(&GeneratorConfig::with_seed(5), 100, 100, 0.6);
        let frac = g.num_edges() as f64 / full;
        assert!((0.55..0.65).contains(&frac), "kept fraction {frac}");
        check_simple(&g).unwrap();
    }

    #[test]
    fn mesh3d_edge_count_and_fraction() {
        let full = mesh3d_random(&GeneratorConfig::with_seed(9), 10, 10, 10, 1.0);
        // 3 * k^2 * (k-1) edges for a k-cube.
        assert_eq!(full.num_edges(), 3 * 100 * 9);
        assert_eq!(component_count(&full), 1);
        let g = mesh3d_random(&GeneratorConfig::with_seed(9), 10, 10, 10, 0.4);
        let frac = g.num_edges() as f64 / full.num_edges() as f64;
        assert!((0.34..0.46).contains(&frac), "kept fraction {frac}");
    }

    #[test]
    fn zero_probability_gives_empty_graph() {
        let g = mesh2d_random(&GeneratorConfig::with_seed(1), 20, 20, 0.0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(component_count(&g), 400);
    }
}
