//! Chung & Condon's structured graphs (paper §5.1): degenerate inputs — the
//! graph is already a tree — whose recursive structure dictates exactly how
//! Borůvka iterations contract, making them worst cases for the Borůvka
//! variants (Fig. 6 shows only MST-BC beats sequential on them).
//!
//! The paper gives one-line definitions; this module realizes them level by
//! level. At level ℓ the current "units" (supervertices after ℓ Borůvka
//! iterations, each represented by one original vertex) are grouped, and
//! edges with weights in `[ℓ, ℓ+1)` are laid between group members so the
//! next Borůvka iteration contracts every group. Weights grow with the
//! level, so each iteration's minimum-edge choices are confined to its own
//! level's edges.
//!
//! * `str0` — units pair up: n halves each iteration, maximizing the
//!   iteration count (the Borůvka worst case in iterations).
//! * `str1` — √n units form a linear chain (weights increasing along the
//!   chain, so the chain hooks into one star and contracts in one
//!   iteration).
//! * `str2` — half the units form one chain, the other half form pairs.
//! * `str3` — √n units form a complete binary tree (weights increase with
//!   depth, so every unit hooks toward the root).

use super::GeneratorConfig;
use crate::edgelist::EdgeList;

/// Which structured family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructuredKind {
    /// Pairs each level.
    Str0,
    /// Chains of √n units each level.
    Str1,
    /// One chain of n/2 units plus n/4 pairs each level.
    Str2,
    /// Complete binary trees of √n units each level.
    Str3,
}

/// Generate a structured graph with `n` vertices (a tree with `n - 1`
/// edges). The `cfg` seed only perturbs weights *within* a level, never the
/// level ordering that defines the family.
pub fn structured(cfg: &GeneratorConfig, kind: StructuredKind, n: usize) -> EdgeList {
    assert!(n >= 1);
    let mut units: Vec<u32> = (0..n as u32).collect();
    let mut triples: Vec<(u32, u32, f64)> = Vec::with_capacity(n.saturating_sub(1));
    let mut level = 0usize;
    // Tiny deterministic intra-level jitter keyed by the seed: keeps weights
    // distinct across runs with different seeds without reordering levels.
    let jitter = (cfg.seed % 997) as f64 / 997_000.0;
    while units.len() > 1 {
        let k = units.len();
        let mut next: Vec<u32> = Vec::with_capacity(k / 2 + 1);
        // Weight of the i-th edge laid at this level: strictly increasing
        // within the level, always inside [level, level + 1).
        let mut laid = 0usize;
        let w = |laid: &mut usize| {
            let v = level as f64 + (*laid + 1) as f64 / (k + 2) as f64 + jitter;
            *laid += 1;
            v
        };
        match kind {
            StructuredKind::Str0 => {
                let mut i = 0;
                while i + 1 < k {
                    triples.push((units[i], units[i + 1], w(&mut laid)));
                    next.push(units[i]);
                    i += 2;
                }
                if i < k {
                    // Odd unit: chain it into the last pair so the level
                    // still halves (n need not be a power of two).
                    triples.push((units[i - 2], units[i], w(&mut laid)));
                }
            }
            StructuredKind::Str1 => {
                let g = (k as f64).sqrt().round().max(2.0) as usize;
                for chunk in units.chunks(g) {
                    for pair in chunk.windows(2) {
                        triples.push((pair[0], pair[1], w(&mut laid)));
                    }
                    next.push(chunk[0]);
                }
            }
            StructuredKind::Str2 => {
                let half = k / 2;
                // First half: one chain.
                if half >= 2 {
                    for pair in units[..half].windows(2) {
                        triples.push((pair[0], pair[1], w(&mut laid)));
                    }
                }
                if half >= 1 {
                    next.push(units[0]);
                }
                // Second half: pairs.
                let mut i = half;
                while i + 1 < k {
                    triples.push((units[i], units[i + 1], w(&mut laid)));
                    next.push(units[i]);
                    i += 2;
                }
                if i < k {
                    if let Some(&anchor) = next.last() {
                        triples.push((anchor, units[i], w(&mut laid)));
                    } else {
                        next.push(units[i]);
                    }
                }
            }
            StructuredKind::Str3 => {
                let g = (k as f64).sqrt().round().max(2.0) as usize;
                for chunk in units.chunks(g) {
                    // Complete binary tree over the chunk, heap-indexed;
                    // parent edges are laid in BFS order so weight grows
                    // with depth.
                    for (idx, &child) in chunk.iter().enumerate().skip(1) {
                        let parent = chunk[(idx - 1) / 2];
                        triples.push((parent, child, w(&mut laid)));
                    }
                    next.push(chunk[0]);
                }
            }
        }
        assert!(next.len() < k, "level {level} failed to shrink ({k} units)");
        units = next;
        level += 1;
    }
    EdgeList::from_triples(n, triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{check_simple, component_count};

    #[test]
    fn all_kinds_are_spanning_trees() {
        for kind in [
            StructuredKind::Str0,
            StructuredKind::Str1,
            StructuredKind::Str2,
            StructuredKind::Str3,
        ] {
            for n in [1usize, 2, 3, 17, 64, 100, 1024] {
                let g = structured(&GeneratorConfig::with_seed(1), kind, n);
                assert_eq!(g.num_vertices(), n, "{kind:?} n={n}");
                assert_eq!(g.num_edges(), n - 1, "{kind:?} n={n} must be a tree");
                check_simple(&g).unwrap_or_else(|e| panic!("{kind:?} n={n}: {e}"));
                assert_eq!(component_count(&g), 1, "{kind:?} n={n} must be connected");
            }
        }
    }

    #[test]
    fn str0_weights_increase_with_level() {
        // With n = 2^k, exactly n/2 edges carry weights < 1 (level 0),
        // n/4 in [1, 2), etc.
        let n = 256;
        let g = structured(&GeneratorConfig::with_seed(0), StructuredKind::Str0, n);
        for lvl in 0..8 {
            let count = g
                .edges()
                .iter()
                .filter(|e| e.w >= lvl as f64 && e.w < (lvl + 1) as f64)
                .count();
            assert_eq!(count, n >> (lvl + 1), "level {lvl}");
        }
    }

    #[test]
    fn str0_takes_log_n_levels() {
        let g = structured(&GeneratorConfig::with_seed(0), StructuredKind::Str0, 1024);
        let max_level = g.edges().iter().map(|e| e.w as usize).max().unwrap();
        assert_eq!(max_level, 9, "1024 vertices need 10 pairing levels");
    }

    #[test]
    fn str1_uses_far_fewer_levels_than_str0() {
        let g = structured(&GeneratorConfig::with_seed(0), StructuredKind::Str1, 1024);
        let max_level = g.edges().iter().map(|e| e.w as usize).max().unwrap();
        assert!(
            max_level <= 4,
            "chains of sqrt(n) should need ~loglog levels, got {max_level}"
        );
    }

    #[test]
    fn deterministic_and_seed_jittered() {
        let a = structured(&GeneratorConfig::with_seed(5), StructuredKind::Str2, 100);
        let b = structured(&GeneratorConfig::with_seed(5), StructuredKind::Str2, 100);
        let c = structured(&GeneratorConfig::with_seed(6), StructuredKind::Str2, 100);
        assert_eq!(a, b);
        // Same topology, different jitter.
        assert_eq!(a.num_edges(), c.num_edges());
        assert_ne!(
            a.edges()[0].w,
            c.edges()[0].w,
            "seed should perturb weights"
        );
    }
}
