//! Random graphs G(n, m): m unique edges added to the vertex set at random,
//! uniformly random weights — the construction "several software packages
//! generate random graphs this way, including LEDA" (paper §5.1).

use rand::prelude::*;
use rand::rngs::StdRng;

use super::GeneratorConfig;
use crate::edgelist::EdgeList;

/// Generate a random graph with exactly `m` distinct undirected edges (no
/// self-loops, no parallel edges) and weights uniform in `[0, 1)`.
///
/// # Panics
/// Panics if `m` exceeds the number of vertex pairs `n * (n - 1) / 2`.
pub fn random_graph(cfg: &GeneratorConfig, n: usize, m: usize) -> EdgeList {
    assert!(
        n >= 2 || m == 0,
        "cannot place edges on fewer than 2 vertices"
    );
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but only {max_edges} pairs exist"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Keys pack (min, max) endpoints into one u64 so uniqueness is a
    // sort + dedup. Rejection sampling converges fast for the sparse graphs
    // this suite targets (m ≪ n²); for dense corners fall back to picking
    // from the full pair enumeration.
    let mut keys: Vec<u64> = Vec::with_capacity(m + m / 8);
    if m * 3 >= max_edges {
        // Dense fallback: enumerate all pairs, partial shuffle, take m.
        let mut all: Vec<u64> = (0..n as u64)
            .flat_map(|a| (a + 1..n as u64).map(move |b| (a << 32) | b))
            .collect();
        let (picked, _) = all.partial_shuffle(&mut rng, m);
        keys.extend_from_slice(picked);
    } else {
        while keys.len() < m {
            let need = m - keys.len();
            // Oversample ~12% to cover duplicates, then dedup.
            for _ in 0..need + need / 8 + 8 {
                let a = rng.gen_range(0..n as u64);
                let b = rng.gen_range(0..n as u64 - 1);
                let b = if b >= a { b + 1 } else { b }; // avoid self-loop
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                keys.push((lo << 32) | hi);
            }
            keys.sort_unstable();
            keys.dedup();
            keys.truncate(m);
        }
    }
    let triples = keys.into_iter().map(|k| {
        let u = (k >> 32) as u32;
        let v = (k & 0xFFFF_FFFF) as u32;
        (u, v, rng.gen::<f64>())
    });
    EdgeList::from_triples(n, triples.collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_simple;

    #[test]
    fn exact_edge_count_and_simple() {
        let cfg = GeneratorConfig::with_seed(1);
        for (n, m) in [(10usize, 20usize), (100, 300), (1000, 6000)] {
            let g = random_graph(&cfg, n, m);
            assert_eq!(g.num_vertices(), n);
            assert_eq!(g.num_edges(), m);
            check_simple(&g).unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_graph(&GeneratorConfig::with_seed(7), 50, 100);
        let b = random_graph(&GeneratorConfig::with_seed(7), 50, 100);
        let c = random_graph(&GeneratorConfig::with_seed(8), 50, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dense_fallback_produces_complete_graph() {
        let g = random_graph(&GeneratorConfig::with_seed(2), 8, 28);
        assert_eq!(g.num_edges(), 28);
        check_simple(&g).unwrap();
    }

    #[test]
    fn weights_are_unit_interval() {
        let g = random_graph(&GeneratorConfig::with_seed(3), 100, 500);
        assert!(g.edges().iter().all(|e| (0.0..1.0).contains(&e.w)));
    }

    #[test]
    #[should_panic(expected = "pairs exist")]
    fn rejects_impossible_edge_count() {
        random_graph(&GeneratorConfig::with_seed(0), 4, 7);
    }

    #[test]
    fn zero_edges_allowed() {
        let g = random_graph(&GeneratorConfig::with_seed(0), 5, 0);
        assert_eq!(g.num_edges(), 0);
    }
}
