//! R-MAT recursive-matrix graphs (Chakrabarti, Zhan & Faloutsos), the
//! Graph500-style scale-free inputs for the large-graph tier.
//!
//! Each edge is drawn independently from its own splitmix64 chain seeded
//! by `(seed, edge index)`, so generation is deterministic, order
//! independent, and O(1) memory — edges stream straight into the binary
//! writer without ever materializing the graph. Self-loops are resampled
//! within the edge's own chain (still deterministic); multi-edges are kept,
//! as the compact-graph step merges them anyway.

use super::GeneratorConfig;
use crate::edgelist::{EdgeList, EdgeListBuilder, GraphBuildError};

/// R-MAT parameters. `scale` gives `n = 2^scale` vertices and
/// `m = edge_factor · n` edges.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: u64,
    /// Quadrant probability a (top-left).
    pub a: f64,
    /// Quadrant probability b (top-right).
    pub b: f64,
    /// Quadrant probability c (bottom-left); d = 1 − a − b − c.
    pub c: f64,
    /// PRNG seed; equal seeds give byte-identical edge streams.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500 reference parameters (a = 0.57, b = c = 0.19) at the given
    /// scale and edge factor.
    pub fn graph500(scale: u32, edge_factor: u64, seed: u64) -> RmatConfig {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
        }
    }

    /// Vertex count `2^scale`.
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Edge count `edge_factor · 2^scale`.
    pub fn num_edges(&self) -> u64 {
        self.edge_factor * self.num_vertices()
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in [0, 1) from 53 random bits.
pub(crate) fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Independent chain for edge `i`: mixing the index through splitmix twice
/// decorrelates neighboring edges regardless of the seed.
pub(crate) fn edge_chain(seed: u64, i: u64) -> u64 {
    let mut s = i
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seed.rotate_left(17) ^ 0xA076_1D64_78BD_642F);
    splitmix64(&mut s);
    splitmix64(&mut s);
    s
}

fn rmat_endpoint_pair(cfg: &RmatConfig, state: &mut u64) -> (u64, u64) {
    let (mut u, mut v) = (0u64, 0u64);
    let ab = cfg.a + cfg.b;
    let abc = ab + cfg.c;
    for _ in 0..cfg.scale {
        let r = unit(state);
        let (du, dv) = if r < cfg.a {
            (0, 0)
        } else if r < ab {
            (0, 1)
        } else if r < abc {
            (1, 0)
        } else {
            (1, 1)
        };
        u = (u << 1) | du;
        v = (v << 1) | dv;
    }
    (u, v)
}

/// The deterministic edge stream: `m` `(u, v, w)` triples with uniform
/// `[0, 1)` weights. Self-loops are resampled inside the per-edge chain.
pub fn rmat_edges(cfg: RmatConfig) -> impl Iterator<Item = (u64, u64, f64)> {
    (0..cfg.num_edges()).map(move |i| {
        let mut state = edge_chain(cfg.seed, i);
        loop {
            let (u, v) = rmat_endpoint_pair(&cfg, &mut state);
            if u != v {
                return (u, v, unit(&mut state));
            }
        }
    })
}

/// Stream an R-MAT graph directly into the binary format at `path` using
/// O(1) memory. Id width is chosen from the vertex count. Returns the edge
/// count written.
pub fn rmat_to_binary(path: impl AsRef<std::path::Path>, cfg: RmatConfig) -> std::io::Result<u64> {
    let n = cfg.num_vertices();
    let wide = (n as u128) > <u32 as crate::vertexid::VertexId>::MAX_COUNT;
    crate::binfmt::write_stream(path, n, wide, rmat_edges(cfg))
}

/// Materialize a small R-MAT instance in memory (tests and benchmarks; the
/// large tier streams to disk instead).
pub fn rmat_graph(cfg: RmatConfig) -> Result<EdgeList, GraphBuildError> {
    let n = usize::try_from(cfg.num_vertices()).map_err(|_| GraphBuildError::TooManyVertices {
        n: cfg.num_vertices() as u128,
    })?;
    let m = usize::try_from(cfg.num_edges()).map_err(|_| GraphBuildError::TooManyEdges {
        m: cfg.num_edges() as u128,
    })?;
    let mut b = EdgeListBuilder::with_capacity(n, m)?;
    for (u, v, w) in rmat_edges(cfg) {
        b.try_push(u, v, w)?;
    }
    Ok(b.finish())
}

/// Convenience: Graph500 parameters from a [`GeneratorConfig`] seed.
pub fn rmat_graph500(gen: &GeneratorConfig, scale: u32, edge_factor: u64) -> RmatConfig {
    RmatConfig::graph500(scale, edge_factor, gen.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_valid() {
        let cfg = RmatConfig::graph500(8, 4, 42);
        let a: Vec<_> = rmat_edges(cfg).collect();
        let b: Vec<_> = rmat_edges(cfg).collect();
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 1024);
        for &(u, v, w) in &a {
            assert!(u < 256 && v < 256);
            assert_ne!(u, v, "no self-loops");
            assert!(w.is_finite() && (0.0..1.0).contains(&w));
        }
        let c: Vec<_> = rmat_edges(RmatConfig::graph500(8, 4, 43)).collect();
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn skews_toward_low_ids() {
        // a = 0.57 concentrates mass in the low-id quadrant; the low half
        // of the id space must see well over half the endpoints.
        let cfg = RmatConfig::graph500(10, 8, 7);
        let n_half = cfg.num_vertices() / 2;
        let mut low = 0u64;
        let mut total = 0u64;
        for (u, v, _) in rmat_edges(cfg) {
            low += u64::from(u < n_half) + u64::from(v < n_half);
            total += 2;
        }
        assert!(low * 10 > total * 6, "{low}/{total} endpoints in low half");
    }

    #[test]
    fn materialized_graph_matches_stream() {
        let cfg = RmatConfig::graph500(6, 4, 9);
        let g = rmat_graph(cfg).unwrap();
        assert_eq!(g.num_vertices(), 64);
        assert_eq!(g.num_edges(), 256);
        let stream: Vec<_> = rmat_edges(cfg).collect();
        for (e, &(u, v, w)) in g.edges().iter().zip(&stream) {
            assert_eq!((u64::from(e.u), u64::from(e.v), e.w), (u, v, w));
        }
    }

    #[test]
    fn streams_to_binary() {
        let path = std::env::temp_dir().join(format!("msf-rmat-{}.msfb", std::process::id()));
        let cfg = RmatConfig::graph500(7, 4, 11);
        let m = rmat_to_binary(&path, cfg).unwrap();
        assert_eq!(m, cfg.num_edges());
        let bin = crate::binfmt::BinGraph::open(&path).unwrap();
        assert_eq!(bin.num_vertices(), 128);
        assert_eq!(bin.to_edge_list().unwrap(), rmat_graph(cfg).unwrap());
        std::fs::remove_file(&path).ok();
    }
}
