//! Edge-weight assignment schemes.
//!
//! The paper stresses that "Density of the graphs is not the only
//! determining factor of the performance ranking of the three sequential
//! algorithms. Different assignment of edge weights is also important"
//! (§5.2, Fig. 3). This module re-weights any generated topology so the
//! harness can sweep that axis too.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::edgelist::EdgeList;

/// How edge weights are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightScheme {
    /// Uniform in [0, 1) — the paper's default everywhere.
    Uniform,
    /// Uniform integers in `0..range`, cast to f64: dense ties, stressing
    /// the tie-breaking total order and Kruskal's sort (few distinct keys).
    SmallIntegers {
        /// Number of distinct weight values.
        range: u32,
    },
    /// Exponentially distributed (heavy head of tiny weights): favors
    /// Prim/Borůvka, whose choices localize to light edges early.
    Exponential,
    /// 90% light / 10% ×1000-heavy: models networks with a slow backbone.
    Bimodal,
}

impl WeightScheme {
    /// Short harness label.
    pub fn name(self) -> &'static str {
        match self {
            WeightScheme::Uniform => "uniform",
            WeightScheme::SmallIntegers { .. } => "small-int",
            WeightScheme::Exponential => "exponential",
            WeightScheme::Bimodal => "bimodal",
        }
    }

    fn draw(self, rng: &mut StdRng) -> f64 {
        match self {
            WeightScheme::Uniform => rng.gen(),
            WeightScheme::SmallIntegers { range } => f64::from(rng.gen_range(0..range.max(1))),
            WeightScheme::Exponential => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln()
            }
            WeightScheme::Bimodal => {
                let base: f64 = rng.gen();
                if rng.gen::<f64>() < 0.1 {
                    base * 1000.0
                } else {
                    base
                }
            }
        }
    }
}

/// Re-draw every weight of `g` under `scheme`, keeping the topology and the
/// edge order (so ids — and therefore tie-breaking structure — carry over).
pub fn assign_weights(g: &EdgeList, scheme: WeightScheme, seed: u64) -> EdgeList {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e19);
    let triples: Vec<(u32, u32, f64)> = g
        .edges()
        .iter()
        .map(|e| (e.u, e.v, scheme.draw(&mut rng)))
        .collect();
    EdgeList::from_triples(g.num_vertices(), triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_graph, GeneratorConfig};

    fn base() -> EdgeList {
        random_graph(&GeneratorConfig::with_seed(8), 200, 800)
    }

    #[test]
    fn topology_is_preserved() {
        let g = base();
        for scheme in [
            WeightScheme::Uniform,
            WeightScheme::SmallIntegers { range: 4 },
            WeightScheme::Exponential,
            WeightScheme::Bimodal,
        ] {
            let h = assign_weights(&g, scheme, 1);
            assert_eq!(h.num_edges(), g.num_edges(), "{scheme:?}");
            for (a, b) in g.edges().iter().zip(h.edges()) {
                assert_eq!((a.u, a.v, a.id), (b.u, b.v, b.id));
            }
        }
    }

    #[test]
    fn small_integers_produce_many_ties() {
        let h = assign_weights(&base(), WeightScheme::SmallIntegers { range: 3 }, 2);
        let mut distinct: Vec<u64> = h.edges().iter().map(|e| e.w.to_bits()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 3);
        assert!(h.edges().iter().all(|e| e.w >= 0.0 && e.w <= 2.0));
    }

    #[test]
    fn exponential_is_positive_and_skewed() {
        let h = assign_weights(&base(), WeightScheme::Exponential, 3);
        assert!(h.edges().iter().all(|e| e.w > 0.0 && e.w.is_finite()));
        let below_one = h.edges().iter().filter(|e| e.w < 1.0).count();
        // exp(1) has P(X < 1) ≈ 0.63.
        assert!(below_one > h.num_edges() / 2);
    }

    #[test]
    fn bimodal_has_a_heavy_tail() {
        let h = assign_weights(&base(), WeightScheme::Bimodal, 4);
        let heavy = h.edges().iter().filter(|e| e.w > 10.0).count();
        let frac = heavy as f64 / h.num_edges() as f64;
        assert!((0.03..0.2).contains(&frac), "heavy fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = base();
        let a = assign_weights(&g, WeightScheme::Exponential, 9);
        let b = assign_weights(&g, WeightScheme::Exponential, 9);
        assert_eq!(a, b);
    }
}
