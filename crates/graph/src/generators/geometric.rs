//! Fixed-degree geometric graphs (paper §5.1, after Moret & Shapiro's
//! empirical MST study): `n` uniform random points in the unit square, each
//! connected to its `k` nearest neighbors, Euclidean distances as weights.
//!
//! k-nearest-neighbor search uses a uniform grid with ~1 point per cell and
//! expanding ring scans, so generation is O(n k) expected.

use rand::prelude::*;
use rand::rngs::StdRng;

use super::GeneratorConfig;
use crate::edgelist::EdgeList;

/// Generate a k-nearest-neighbor geometric graph. Each vertex contributes
/// edges to its `k` nearest neighbors; the union is deduplicated, so degrees
/// lie in `[k, 2k]` — the paper's "fixed degree k" family.
pub fn geometric_knn(cfg: &GeneratorConfig, n: usize, k: usize) -> EdgeList {
    assert!(k < n, "need more vertices than neighbors");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6e06);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();

    // Grid bucketing: side ≈ sqrt(n) cells per axis.
    let side = ((n as f64).sqrt().ceil() as usize).max(1);
    let cell_of = |x: f64, y: f64| {
        let cx = ((x * side as f64) as usize).min(side - 1);
        let cy = ((y * side as f64) as usize).min(side - 1);
        cy * side + cx
    };
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); side * side];
    for (i, &(x, y)) in pts.iter().enumerate() {
        grid[cell_of(x, y)].push(i as u32);
    }

    let mut keys: Vec<u64> = Vec::with_capacity(n * k);
    let mut cand: Vec<(f64, u32)> = Vec::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        cand.clear();
        let cx = ((x * side as f64) as usize).min(side - 1) as isize;
        let cy = ((y * side as f64) as usize).min(side - 1) as isize;
        // Expand rings until we have k candidates whose distances are all
        // certainly smaller than anything outside the scanned square.
        let mut ring = 0isize;
        loop {
            let mut added = false;
            for dy in -ring..=ring {
                for dx in -ring..=ring {
                    if dx.abs() != ring && dy.abs() != ring {
                        continue; // only the new ring boundary
                    }
                    let (gx, gy) = (cx + dx, cy + dy);
                    if gx < 0 || gy < 0 || gx >= side as isize || gy >= side as isize {
                        continue;
                    }
                    for &j in &grid[gy as usize * side + gx as usize] {
                        if j as usize == i {
                            continue;
                        }
                        let (px, py) = pts[j as usize];
                        let d2 = (px - x) * (px - x) + (py - y) * (py - y);
                        cand.push((d2, j));
                        added = true;
                    }
                }
            }
            // Points beyond the scanned square are at least `ring/side` away.
            let safe_d = ring as f64 / side as f64;
            if cand.len() >= k {
                cand.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                if cand[k - 1].0.sqrt() <= safe_d || ring as usize >= 2 * side {
                    break;
                }
            } else if ring as usize > 2 * side && !added {
                break; // degenerate tiny inputs
            }
            ring += 1;
        }
        for &(_, j) in cand.iter().take(k) {
            let (a, b) = if (i as u32) < j {
                (i as u64, j as u64)
            } else {
                (j as u64, i as u64)
            };
            keys.push((a << 32) | b);
        }
    }
    keys.sort_unstable();
    keys.dedup();
    let triples: Vec<(u32, u32, f64)> = keys
        .into_iter()
        .map(|key| {
            let u = (key >> 32) as u32;
            let v = (key & 0xFFFF_FFFF) as u32;
            let (ux, uy) = pts[u as usize];
            let (vx, vy) = pts[v as usize];
            let d = ((ux - vx) * (ux - vx) + (uy - vy) * (uy - vy)).sqrt();
            (u, v, d)
        })
        .collect();
    EdgeList::from_triples(n, triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_simple;
    use crate::AdjacencyArray;

    #[test]
    fn degrees_are_at_least_k() {
        let g = geometric_knn(&GeneratorConfig::with_seed(4), 500, 6);
        check_simple(&g).unwrap();
        let csr = AdjacencyArray::from_edge_list(&g);
        for v in 0..500u32 {
            assert!(csr.degree(v) >= 6, "vertex {v} degree {}", csr.degree(v));
        }
        // Dedup means strictly fewer than n*k edges.
        assert!(g.num_edges() <= 500 * 6);
        assert!(g.num_edges() >= 500 * 6 / 2);
    }

    #[test]
    fn knn_edges_are_actually_nearest() {
        // Brute-force check on a small instance: for every vertex, its
        // nearest neighbor must be adjacent (1-NN ⊆ k-NN edges).
        let cfg = GeneratorConfig::with_seed(11);
        let n = 60;
        let g = geometric_knn(&cfg, n, 3);
        // Reconstruct points with the same RNG stream.
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6e06);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let csr = AdjacencyArray::from_edge_list(&g);
        for i in 0..n {
            let (x, y) = pts[i];
            let nearest = (0..n)
                .filter(|&j| j != i)
                .min_by(|&a, &b| {
                    let da = (pts[a].0 - x).powi(2) + (pts[a].1 - y).powi(2);
                    let db = (pts[b].0 - x).powi(2) + (pts[b].1 - y).powi(2);
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            assert!(
                csr.neighbors(i as u32).any(|(t, _, _)| t == nearest as u32),
                "vertex {i} missing its nearest neighbor {nearest}"
            );
        }
    }

    #[test]
    fn weights_are_euclidean_distances() {
        let g = geometric_knn(&GeneratorConfig::with_seed(2), 100, 4);
        // Distances in the unit square are in (0, sqrt(2)].
        assert!(g
            .edges()
            .iter()
            .all(|e| e.w > 0.0 && e.w <= std::f64::consts::SQRT_2));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = geometric_knn(&GeneratorConfig::with_seed(5), 200, 6);
        let b = geometric_knn(&GeneratorConfig::with_seed(5), 200, 6);
        assert_eq!(a, b);
    }
}
