//! Power-law (heavy-tailed degree) random graphs via inverse-transform
//! sampling — the skewed-degree complement to [`super::rmat`] in the
//! large-graph tier.
//!
//! Each endpoint is drawn as `floor(n · r^alpha)` for uniform `r ∈ [0, 1)`:
//! `alpha = 1` is the uniform `G(n, m)` model, larger `alpha` piles
//! probability onto the low vertex ids, producing a heavy-tailed degree
//! distribution with a handful of hub vertices. Like the R-MAT stream,
//! every edge comes from its own splitmix64 chain keyed by `(seed, index)`,
//! so generation is deterministic, order independent, and O(1) memory.

use super::rmat::{edge_chain, unit};
use super::GeneratorConfig;
use crate::edgelist::{EdgeList, EdgeListBuilder, GraphBuildError};

/// Power-law generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct PowerLawConfig {
    /// Vertex count.
    pub n: u64,
    /// Edge count.
    pub m: u64,
    /// Skew exponent; endpoint = `floor(n · r^alpha)`. Must be ≥ 1 and
    /// finite. `alpha = 1` is uniform; 2–3 gives realistic hub structure.
    pub alpha: f64,
    /// PRNG seed; equal seeds give byte-identical edge streams.
    pub seed: u64,
}

impl PowerLawConfig {
    /// A config with the conventional `alpha = 2.5` skew.
    pub fn new(n: u64, m: u64, seed: u64) -> PowerLawConfig {
        PowerLawConfig {
            n,
            m,
            alpha: 2.5,
            seed,
        }
    }
}

fn endpoint(n: u64, alpha: f64, state: &mut u64) -> u64 {
    let r = unit(state);
    // r < 1 and alpha >= 1 keep r^alpha < 1, so the floor is < n.
    ((n as f64) * r.powf(alpha)) as u64
}

/// The deterministic edge stream: `m` `(u, v, w)` triples with uniform
/// `[0, 1)` weights. Self-loops are resampled inside the per-edge chain.
///
/// # Panics
/// Panics when `n < 2` with `m > 0` (no self-loop-free edge exists) or when
/// `alpha` is below 1 or non-finite.
pub fn powerlaw_edges(cfg: PowerLawConfig) -> impl Iterator<Item = (u64, u64, f64)> {
    assert!(
        cfg.alpha >= 1.0 && cfg.alpha.is_finite(),
        "alpha must be finite and >= 1"
    );
    assert!(cfg.n >= 2 || cfg.m == 0, "need n >= 2 to draw any edge");
    (0..cfg.m).map(move |i| {
        let mut state = edge_chain(cfg.seed ^ 0x50_57_4C_41, i);
        loop {
            let u = endpoint(cfg.n, cfg.alpha, &mut state);
            let v = endpoint(cfg.n, cfg.alpha, &mut state);
            if u != v {
                return (u, v, unit(&mut state));
            }
        }
    })
}

/// Stream a power-law graph directly into the binary format at `path`
/// using O(1) memory. Id width is chosen from the vertex count. Returns
/// the edge count written.
pub fn powerlaw_to_binary(
    path: impl AsRef<std::path::Path>,
    cfg: PowerLawConfig,
) -> std::io::Result<u64> {
    let wide = (cfg.n as u128) > <u32 as crate::vertexid::VertexId>::MAX_COUNT;
    crate::binfmt::write_stream(path, cfg.n, wide, powerlaw_edges(cfg))
}

/// Materialize a small power-law instance in memory (tests and benchmarks;
/// the large tier streams to disk instead).
pub fn powerlaw_graph(cfg: PowerLawConfig) -> Result<EdgeList, GraphBuildError> {
    let n = usize::try_from(cfg.n)
        .map_err(|_| GraphBuildError::TooManyVertices { n: cfg.n as u128 })?;
    let m =
        usize::try_from(cfg.m).map_err(|_| GraphBuildError::TooManyEdges { m: cfg.m as u128 })?;
    let mut b = EdgeListBuilder::with_capacity(n, m)?;
    for (u, v, w) in powerlaw_edges(cfg) {
        b.try_push(u, v, w)?;
    }
    Ok(b.finish())
}

/// Convenience: a [`PowerLawConfig`] from a [`GeneratorConfig`] seed.
pub fn powerlaw_from(gen: &GeneratorConfig, n: u64, m: u64) -> PowerLawConfig {
    PowerLawConfig::new(n, m, gen.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_valid() {
        let cfg = PowerLawConfig::new(500, 2000, 21);
        let a: Vec<_> = powerlaw_edges(cfg).collect();
        let b: Vec<_> = powerlaw_edges(cfg).collect();
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 2000);
        for &(u, v, w) in &a {
            assert!(u < 500 && v < 500);
            assert_ne!(u, v);
            assert!(w.is_finite() && (0.0..1.0).contains(&w));
        }
        let c: Vec<_> = powerlaw_edges(PowerLawConfig::new(500, 2000, 22)).collect();
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn alpha_controls_the_skew() {
        let count_low = |alpha: f64| -> u64 {
            let cfg = PowerLawConfig {
                n: 1000,
                m: 4000,
                alpha,
                seed: 5,
            };
            powerlaw_edges(cfg)
                .map(|(u, v, _)| u64::from(u < 100) + u64::from(v < 100))
                .sum()
        };
        let uniform = count_low(1.0);
        let skewed = count_low(2.5);
        assert!(
            skewed > uniform * 3,
            "alpha=2.5 must pile onto low ids ({skewed} vs {uniform})"
        );
    }

    #[test]
    fn streams_to_binary() {
        let path = std::env::temp_dir().join(format!("msf-plaw-{}.msfb", std::process::id()));
        let cfg = PowerLawConfig::new(200, 600, 17);
        let m = powerlaw_to_binary(&path, cfg).unwrap();
        assert_eq!(m, 600);
        let bin = crate::binfmt::BinGraph::open(&path).unwrap();
        assert_eq!(bin.to_edge_list().unwrap(), powerlaw_graph(cfg).unwrap());
        std::fs::remove_file(&path).ok();
    }
}
