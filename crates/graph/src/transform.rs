//! Graph transformations used by the harness and tests.
//!
//! * [`permute_vertices`] destroys any correlation between vertex id and
//!   memory locality — generator output tends to be suspiciously
//!   cache-friendly (mesh rows, geometric grid order), and the paper's SMP
//!   analysis is all about non-contiguous access, so benches run both
//!   orderings.
//! * [`disjoint_union`] builds multi-component inputs from connected ones
//!   (this suite solves the *forest* problem, which needs such inputs).
//! * [`overlay`] unions edge sets over a shared vertex set, producing the
//!   multi-layer networks of the application examples.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::edgelist::EdgeList;

/// Relabel vertices by a random permutation (edge order and ids preserved).
pub fn permute_vertices(g: &EdgeList, seed: u64) -> EdgeList {
    let n = g.num_vertices();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e52);
    perm.shuffle(&mut rng);
    let triples: Vec<(u32, u32, f64)> = g
        .edges()
        .iter()
        .map(|e| (perm[e.u as usize], perm[e.v as usize], e.w))
        .collect();
    EdgeList::from_triples(n, triples)
}

/// Concatenate graphs into one with disjoint vertex ranges; edge ids are
/// reassigned in concatenation order.
pub fn disjoint_union(parts: &[&EdgeList]) -> EdgeList {
    let n: usize = parts.iter().map(|g| g.num_vertices()).sum();
    let mut triples = Vec::with_capacity(parts.iter().map(|g| g.num_edges()).sum());
    let mut offset = 0u32;
    for g in parts {
        for e in g.edges() {
            triples.push((e.u + offset, e.v + offset, e.w));
        }
        offset += g.num_vertices() as u32;
    }
    EdgeList::from_triples(n, triples)
}

/// Union the edge sets of graphs over the same vertex count. Parallel edges
/// across layers are kept (Borůvka's compact merges them); parallel edges
/// are never produced from a single simple layer.
pub fn overlay(layers: &[&EdgeList]) -> EdgeList {
    let n = layers.first().map_or(0, |g| g.num_vertices());
    assert!(
        layers.iter().all(|g| g.num_vertices() == n),
        "overlay layers must share the vertex set"
    );
    let mut triples = Vec::with_capacity(layers.iter().map(|g| g.num_edges()).sum());
    for g in layers {
        triples.extend(g.edges().iter().map(|e| (e.u, e.v, e.w)));
    }
    EdgeList::from_triples(n, triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_graph, GeneratorConfig};
    use crate::validate::component_count;

    #[test]
    fn permutation_preserves_structure() {
        let g = random_graph(&GeneratorConfig::with_seed(4), 100, 300);
        let h = permute_vertices(&g, 9);
        assert_eq!(h.num_vertices(), 100);
        assert_eq!(h.num_edges(), 300);
        assert_eq!(component_count(&g), component_count(&h));
        // Weight multiset unchanged.
        let mut wg: Vec<u64> = g.edges().iter().map(|e| e.w.to_bits()).collect();
        let mut wh: Vec<u64> = h.edges().iter().map(|e| e.w.to_bits()).collect();
        wg.sort_unstable();
        wh.sort_unstable();
        assert_eq!(wg, wh);
        // And it actually permuted something.
        assert_ne!(g, h);
    }

    #[test]
    fn permutation_preserves_msf_weight() {
        // The MSF weight is a graph invariant; ids differ but weight cannot.
        let g = random_graph(&GeneratorConfig::with_seed(5), 200, 800);
        let h = permute_vertices(&g, 1);
        // Tiny Kruskal on triples, independent of msf-core.
        let weight = |g: &EdgeList| {
            let mut ids: Vec<u32> = (0..g.num_edges() as u32).collect();
            ids.sort_by_key(|&id| g.edge(id).key());
            let mut uf = msf_primitives::unionfind::UnionFind::new(g.num_vertices());
            ids.iter()
                .filter(|&&id| {
                    let e = g.edge(id);
                    uf.union(e.u as usize, e.v as usize)
                })
                .map(|&id| g.edge(id).w)
                .sum::<f64>()
        };
        assert!((weight(&g) - weight(&h)).abs() < 1e-9);
    }

    #[test]
    fn disjoint_union_offsets_components() {
        let a = random_graph(&GeneratorConfig::with_seed(1), 50, 150);
        let b = random_graph(&GeneratorConfig::with_seed(2), 70, 200);
        let u = disjoint_union(&[&a, &b]);
        assert_eq!(u.num_vertices(), 120);
        assert_eq!(u.num_edges(), 350);
        assert_eq!(
            component_count(&u),
            component_count(&a) + component_count(&b)
        );
        // No cross edges: every edge lives entirely in one range.
        assert!(u.edges().iter().all(|e| (e.u < 50) == (e.v < 50)));
    }

    #[test]
    fn overlay_keeps_all_layers() {
        let a = random_graph(&GeneratorConfig::with_seed(1), 60, 100);
        let b = random_graph(&GeneratorConfig::with_seed(2), 60, 120);
        let o = overlay(&[&a, &b]);
        assert_eq!(o.num_vertices(), 60);
        assert_eq!(o.num_edges(), 220);
    }

    #[test]
    #[should_panic(expected = "share the vertex set")]
    fn overlay_rejects_mismatched_layers() {
        let a = random_graph(&GeneratorConfig::with_seed(1), 10, 9);
        let b = random_graph(&GeneratorConfig::with_seed(2), 11, 9);
        overlay(&[&a, &b]);
    }

    #[test]
    fn empty_unions() {
        let u = disjoint_union(&[]);
        assert_eq!(u.num_vertices(), 0);
        assert_eq!(u.num_edges(), 0);
    }
}
