//! Streaming DIMACS/METIS graph I/O.
//!
//! The 9th DIMACS shortest-path format adapted to undirected weighted
//! graphs, as the original `hpc.ece.unm.edu` release consumed:
//!
//! ```text
//! c comment lines
//! p sp <n> <m>
//! a <u> <v> <w>        (1-indexed endpoints, one line per undirected edge)
//! ```
//!
//! Both parsers stream: each line is read into one reusable byte buffer
//! (`BufRead::read_until`), tokens are parsed straight from the byte slice,
//! and the full text is never resident — the only O(input) allocation is
//! the edge list itself, reserved once from the declared edge count. A
//! 100M-edge file therefore costs one pass and zero per-line heap traffic.
//! Errors carry the byte offset of the offending line.
//!
//! Validation happens *at the boundary*: endpoints are checked against the
//! declared vertex count, edge counts against the declared `m` (in both
//! directions — early abort on excess, error on shortfall), weights must be
//! finite (`nan`/`inf`/`-inf` parse as floats but are rejected), `p`/header
//! lines may not repeat, and self-loops are refused. See
//! [`crate::edgelist::GraphBuildError`].

use std::io::{BufRead, Write};

use crate::edgelist::{EdgeList, EdgeListBuilder};
use msf_primitives::obs::metrics::{LazyCounter, LazyHistogram};

static INGEST_BYTES: LazyCounter = LazyCounter::new("ingest.text.bytes");
static INGEST_EDGES: LazyCounter = LazyCounter::new("ingest.text.edges");
static INGEST_WALL: LazyHistogram = LazyHistogram::new("ingest.text.wall_ns");

/// Write `g` in DIMACS format.
pub fn write_dimacs(g: &EdgeList, mut out: impl Write) -> std::io::Result<()> {
    writeln!(out, "c msf-suite graph")?;
    writeln!(out, "p sp {} {}", g.num_vertices(), g.num_edges())?;
    for e in g.edges() {
        writeln!(out, "a {} {} {}", e.u + 1, e.v + 1, e.w)?;
    }
    Ok(())
}

/// A line-at-a-time scanner over a byte stream that reuses one buffer and
/// tracks byte offsets. The returned slice has the trailing `\n`/`\r\n`
/// stripped.
struct ByteLines<R> {
    reader: R,
    buf: Vec<u8>,
    next_offset: u64,
}

impl<R: BufRead> ByteLines<R> {
    fn new(reader: R) -> Self {
        ByteLines {
            reader,
            buf: Vec::with_capacity(128),
            next_offset: 0,
        }
    }

    /// The next line as `(byte offset of line start, line bytes)`, or
    /// `None` at EOF.
    fn next_line(&mut self) -> std::io::Result<Option<(u64, &[u8])>> {
        self.buf.clear();
        let read = self.reader.read_until(b'\n', &mut self.buf)?;
        if read == 0 {
            return Ok(None);
        }
        let offset = self.next_offset;
        self.next_offset += read as u64;
        let mut line = self.buf.as_slice();
        if line.last() == Some(&b'\n') {
            line = &line[..line.len() - 1];
        }
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        Ok(Some((offset, line)))
    }

    /// Total bytes consumed so far.
    fn consumed(&self) -> u64 {
        self.next_offset
    }
}

/// Whitespace-delimited tokens of a line, no allocation.
fn tokens(line: &[u8]) -> impl Iterator<Item = &[u8]> {
    line.split(|b: &u8| b.is_ascii_whitespace())
        .filter(|t| !t.is_empty())
}

/// Parse an unsigned decimal integer from raw bytes (overflow-checked).
fn parse_u64(tok: &[u8]) -> Option<u64> {
    if tok.is_empty() {
        return None;
    }
    let mut v: u64 = 0;
    for &b in tok {
        let d = (b as char).to_digit(10)? as u64;
        v = v.checked_mul(10)?.checked_add(d)?;
    }
    Some(v)
}

/// Parse a float from raw bytes. `str::parse::<f64>` does not allocate, so
/// this keeps the hot path heap-silent. Accepts `nan`/`inf` spellings —
/// finiteness is rejected separately so the error can say *why*.
fn parse_f64(tok: &[u8]) -> Option<f64> {
    std::str::from_utf8(tok).ok()?.parse().ok()
}

fn bad_at(offset: u64, msg: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("byte {offset}: {msg}"),
    )
}

/// Parse a DIMACS graph. Edge ids are assigned in file order.
pub fn read_dimacs(input: impl BufRead) -> std::io::Result<EdgeList> {
    let start = std::time::Instant::now();
    let mut lines = ByteLines::new(input);
    let mut header: Option<(u64, u64)> = None; // (n, declared m)
    let mut builder: Option<EdgeListBuilder> = None;
    while let Some((offset, line)) = lines.next_line()? {
        let mut tok = tokens(line);
        match tok.next() {
            None | Some(b"c") => continue,
            Some(b"p") => {
                if header.is_some() {
                    return Err(bad_at(offset, "duplicate p line"));
                }
                let _kind = tok
                    .next()
                    .ok_or_else(|| bad_at(offset, "p line missing kind"))?;
                let n = tok
                    .next()
                    .and_then(parse_u64)
                    .ok_or_else(|| bad_at(offset, "p line missing n"))?;
                let m = tok
                    .next()
                    .and_then(parse_u64)
                    .ok_or_else(|| bad_at(offset, "p line missing m"))?;
                if n > u64::try_from(usize::MAX).unwrap_or(u64::MAX) {
                    return Err(bad_at(offset, format!("vertex count {n} unrepresentable")));
                }
                let b = EdgeListBuilder::with_capacity(
                    n as usize,
                    usize::try_from(m).unwrap_or(usize::MAX),
                )
                .map_err(|e| bad_at(offset, e))?;
                header = Some((n, m));
                builder = Some(b);
            }
            Some(b"a") => {
                let (_, declared_m) = header
                    .ok_or_else(|| bad_at(offset, "a line before p line (missing p line)"))?;
                let b = builder
                    .as_mut()
                    .expect("builder exists whenever header does");
                if b.len() as u64 >= declared_m {
                    return Err(bad_at(
                        offset,
                        format!("more than the declared {declared_m} edges"),
                    ));
                }
                let u = tok
                    .next()
                    .and_then(parse_u64)
                    .ok_or_else(|| bad_at(offset, "a line missing u"))?;
                let v = tok
                    .next()
                    .and_then(parse_u64)
                    .ok_or_else(|| bad_at(offset, "a line missing v"))?;
                let w = tok
                    .next()
                    .and_then(parse_f64)
                    .ok_or_else(|| bad_at(offset, "a line missing weight"))?;
                if u == 0 || v == 0 {
                    return Err(bad_at(offset, "DIMACS vertices are 1-indexed"));
                }
                b.try_push(u - 1, v - 1, w).map_err(|e| bad_at(offset, e))?;
            }
            Some(other) => {
                return Err(bad_at(
                    offset,
                    format!("unknown line kind {:?}", String::from_utf8_lossy(other)),
                ))
            }
        }
    }
    let (_, declared_m) = header
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "missing p line"))?;
    let builder = builder.expect("builder exists whenever header does");
    if (builder.len() as u64) != declared_m {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "p line declared {declared_m} edges, found {} (truncated file?)",
                builder.len()
            ),
        ));
    }
    INGEST_BYTES.add(lines.consumed());
    INGEST_EDGES.add(builder.len() as u64);
    INGEST_WALL.record(start.elapsed().as_nanos() as u64);
    Ok(builder.finish())
}

/// Write `g` in METIS adjacency format with edge weights:
///
/// ```text
/// <n> <m> 001
/// <nbr> <w*SCALE> <nbr> <w*SCALE> …     (line i = neighbors of vertex i, 1-indexed)
/// ```
///
/// METIS weights are integers; weights are scaled by `weight_scale` and
/// rounded, so exact roundtrips need weights that are multiples of
/// `1/weight_scale`.
pub fn write_metis(g: &EdgeList, weight_scale: f64, mut out: impl Write) -> std::io::Result<()> {
    let csr = crate::adjacency::AdjacencyArray::from_edge_list(g);
    writeln!(out, "{} {} 001", g.num_vertices(), g.num_edges())?;
    for v in 0..g.num_vertices() as u32 {
        let mut first = true;
        for (t, w, _) in csr.neighbors(v) {
            if !first {
                write!(out, " ")?;
            }
            write!(out, "{} {}", t + 1, (w * weight_scale).round() as i64)?;
            first = false;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Parse a METIS adjacency file (weighted, fmt `001` or `1`). Each
/// undirected edge must appear in both endpoint lines; duplicates collapse.
pub fn read_metis(input: impl BufRead, weight_scale: f64) -> std::io::Result<EdgeList> {
    let start = std::time::Instant::now();
    let mut lines = ByteLines::new(input);
    // Header: first non-comment, non-blank line.
    let (n, m) = loop {
        match lines.next_line()? {
            Some((_, line)) if line.is_empty() || line.first() == Some(&b'%') => continue,
            Some((offset, line)) => {
                let mut tok = tokens(line);
                let n = tok
                    .next()
                    .and_then(parse_u64)
                    .ok_or_else(|| bad_at(offset, "header missing n"))?;
                let m = tok
                    .next()
                    .and_then(parse_u64)
                    .ok_or_else(|| bad_at(offset, "header missing m"))?;
                match tok.next() {
                    None | Some(b"001") | Some(b"1") => {}
                    Some(other) => {
                        return Err(bad_at(
                            offset,
                            format!("unsupported METIS fmt {:?}", String::from_utf8_lossy(other)),
                        ))
                    }
                }
                if n > u64::try_from(usize::MAX).unwrap_or(u64::MAX) {
                    return Err(bad_at(offset, format!("vertex count {n} unrepresentable")));
                }
                break (n, m);
            }
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "missing METIS header",
                ))
            }
        }
    };
    let mut builder =
        EdgeListBuilder::with_capacity(n as usize, usize::try_from(m).unwrap_or(usize::MAX))
            .map_err(std::io::Error::from)?;
    let mut v: u64 = 0;
    while let Some((offset, line)) = lines.next_line()? {
        if line.first() == Some(&b'%') {
            continue;
        }
        if v >= n {
            if tokens(line).next().is_none() {
                continue;
            }
            return Err(bad_at(offset, "more adjacency lines than vertices"));
        }
        let mut tok = tokens(line);
        while let Some(nbr) = tok.next() {
            let u = parse_u64(nbr).ok_or_else(|| bad_at(offset, "bad neighbor id"))?;
            let w_tok = tok
                .next()
                .ok_or_else(|| bad_at(offset, "neighbor missing weight"))?;
            let w_int = parse_i64(w_tok).ok_or_else(|| bad_at(offset, "bad neighbor weight"))?;
            if u == 0 || u > n {
                return Err(bad_at(
                    offset,
                    format!("neighbor id {u} out of range (1-indexed, n = {n})"),
                ));
            }
            // Keep each undirected edge once (from its lower endpoint).
            if v < u - 1 {
                if builder.len() as u64 >= m {
                    return Err(bad_at(offset, format!("more than the declared {m} edges")));
                }
                let w = w_int as f64 / weight_scale;
                builder
                    .try_push(v, u - 1, w)
                    .map_err(|e| bad_at(offset, e))?;
            }
        }
        v += 1;
    }
    if v != n {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("expected {n} adjacency lines, got {v} (truncated file?)"),
        ));
    }
    if builder.len() as u64 != m {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("header declared {m} edges, found {}", builder.len()),
        ));
    }
    INGEST_BYTES.add(lines.consumed());
    INGEST_EDGES.add(builder.len() as u64);
    INGEST_WALL.record(start.elapsed().as_nanos() as u64);
    Ok(builder.finish())
}

/// Parse a signed decimal integer from raw bytes.
fn parse_i64(tok: &[u8]) -> Option<i64> {
    match tok.split_first() {
        Some((&b'-', rest)) => {
            let v = parse_u64(rest)?;
            (v <= (i64::MAX as u64) + 1).then(|| (v as i64).wrapping_neg())
        }
        _ => {
            let v = parse_u64(tok)?;
            i64::try_from(v).ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_graph, GeneratorConfig};

    #[test]
    fn roundtrip_preserves_graph() {
        let g = random_graph(&GeneratorConfig::with_seed(12), 40, 90);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let back = read_dimacs(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "c hello\n\np sp 3 2\na 1 2 0.5\nc mid comment\na 2 3 1.5\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge(1).w, 1.5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(
            read_dimacs("a 1 2 0.5\n".as_bytes()).is_err(),
            "missing p line"
        );
        assert!(
            read_dimacs("p sp 3 1\n".as_bytes()).is_err(),
            "edge count mismatch"
        );
        assert!(
            read_dimacs("p sp 3 1\na 0 2 1.0\n".as_bytes()).is_err(),
            "0-indexed vertex"
        );
        assert!(
            read_dimacs("q sp 3 1\n".as_bytes()).is_err(),
            "unknown line kind"
        );
        assert!(
            read_dimacs("p sp 3 1\na 1 2\n".as_bytes()).is_err(),
            "missing weight"
        );
    }

    #[test]
    fn rejects_structural_violations_with_byte_offsets() {
        // Duplicate p line.
        let err = read_dimacs("p sp 3 1\np sp 3 1\na 1 2 1.0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("byte 9"), "{err}");
        assert!(err.to_string().contains("duplicate p line"), "{err}");
        // Endpoint beyond the declared vertex count.
        let err = read_dimacs("p sp 3 1\na 1 4 1.0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        // More edges than declared (early abort, not silent acceptance).
        let err = read_dimacs("p sp 3 1\na 1 2 1.0\na 2 3 1.0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared 1"), "{err}");
        // Self-loop.
        let err = read_dimacs("p sp 3 1\na 2 2 1.0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("self-loop"), "{err}");
        // Truncated: fewer edges than declared.
        let err = read_dimacs("p sp 3 2\na 1 2 1.0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn rejects_non_finite_weights() {
        for w in ["nan", "NaN", "inf", "-inf", "Infinity"] {
            let text = format!("p sp 2 1\na 1 2 {w}\n");
            let err = read_dimacs(text.as_bytes()).unwrap_err();
            assert!(
                err.to_string().contains("finite"),
                "weight {w} must be rejected as non-finite, got: {err}"
            );
        }
    }

    #[test]
    fn metis_roundtrip_with_integer_weights() {
        // Weights that are multiples of 1/1000 survive the integer scaling.
        let base = random_graph(&GeneratorConfig::with_seed(21), 30, 80);
        let triples: Vec<(u32, u32, f64)> = base
            .edges()
            .iter()
            .map(|e| (e.u, e.v, (e.w * 1000.0).round() / 1000.0))
            .collect();
        let g = EdgeList::from_triples(30, triples);
        let mut buf = Vec::new();
        write_metis(&g, 1000.0, &mut buf).unwrap();
        let back = read_metis(&buf[..], 1000.0).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        // Edge sets match as (min, max, weight) triples.
        let canon = |g: &EdgeList| {
            let mut v: Vec<(u32, u32, u64)> = g
                .edges()
                .iter()
                .map(|e| (e.u.min(e.v), e.u.max(e.v), e.w.to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(canon(&g), canon(&back));
    }

    #[test]
    fn metis_parses_comments_and_rejects_garbage() {
        let text = "% comment\n3 2 001\n2 5 3 7\n1 5\n1 7\n";
        let g = read_metis(text.as_bytes(), 1.0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(
            read_metis("3 2 011\n".as_bytes(), 1.0).is_err(),
            "vertex weights unsupported"
        );
        assert!(read_metis("".as_bytes(), 1.0).is_err(), "empty file");
        assert!(
            read_metis("2 1 001\n2 5\n1 5\n3 1\n".as_bytes(), 1.0).is_err(),
            "too many lines"
        );
        assert!(
            read_metis("2 1 001\n0 5\n1 5\n".as_bytes(), 1.0).is_err(),
            "0-indexed neighbor"
        );
        assert!(
            read_metis("2 1 001\n2 5\n".as_bytes(), 1.0).is_err(),
            "truncated adjacency"
        );
        // Zero weight scale would produce infinite weights: rejected at the
        // ingestion boundary, not downstream.
        assert!(
            read_metis("2 1 001\n2 5\n1 5\n".as_bytes(), 0.0).is_err(),
            "non-finite scaled weight"
        );
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = EdgeList::from_triples(4, vec![]);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let back = read_dimacs(&buf[..]).unwrap();
        assert_eq!(back.num_vertices(), 4);
        assert_eq!(back.num_edges(), 0);
    }
}
