//! DIMACS-style graph I/O.
//!
//! The 9th DIMACS shortest-path format adapted to undirected weighted
//! graphs, as the original `hpc.ece.unm.edu` release consumed:
//!
//! ```text
//! c comment lines
//! p sp <n> <m>
//! a <u> <v> <w>        (1-indexed endpoints, one line per undirected edge)
//! ```

use std::io::{BufRead, Write};

use crate::edgelist::EdgeList;

/// Write `g` in DIMACS format.
pub fn write_dimacs(g: &EdgeList, mut out: impl Write) -> std::io::Result<()> {
    writeln!(out, "c msf-suite graph")?;
    writeln!(out, "p sp {} {}", g.num_vertices(), g.num_edges())?;
    for e in g.edges() {
        writeln!(out, "a {} {} {}", e.u + 1, e.v + 1, e.w)?;
    }
    Ok(())
}

/// Parse a DIMACS graph. Edge ids are assigned in file order.
pub fn read_dimacs(input: impl BufRead) -> std::io::Result<EdgeList> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut n: Option<usize> = None;
    let mut m = 0usize;
    let mut triples: Vec<(u32, u32, f64)> = Vec::new();
    for line in input.lines() {
        let line = line?;
        let mut tok = line.split_whitespace();
        match tok.next() {
            None | Some("c") => continue,
            Some("p") => {
                let _kind = tok.next().ok_or_else(|| bad("p line missing kind"))?;
                let nv: usize = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("p line missing n"))?;
                m = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("p line missing m"))?;
                n = Some(nv);
                triples.reserve(m);
            }
            Some("a") => {
                let u: u32 = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("a line missing u"))?;
                let v: u32 = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("a line missing v"))?;
                let w: f64 = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("a line missing weight"))?;
                if u == 0 || v == 0 {
                    return Err(bad("DIMACS vertices are 1-indexed"));
                }
                triples.push((u - 1, v - 1, w));
            }
            Some(other) => return Err(bad(&format!("unknown line kind {other:?}"))),
        }
    }
    let n = n.ok_or_else(|| bad("missing p line"))?;
    if triples.len() != m {
        return Err(bad(&format!(
            "p line declared {m} edges, found {}",
            triples.len()
        )));
    }
    Ok(EdgeList::from_triples(n, triples))
}

/// Write `g` in METIS adjacency format with edge weights:
///
/// ```text
/// <n> <m> 001
/// <nbr> <w*SCALE> <nbr> <w*SCALE> …     (line i = neighbors of vertex i, 1-indexed)
/// ```
///
/// METIS weights are integers; weights are scaled by `weight_scale` and
/// rounded, so exact roundtrips need weights that are multiples of
/// `1/weight_scale`.
pub fn write_metis(g: &EdgeList, weight_scale: f64, mut out: impl Write) -> std::io::Result<()> {
    let csr = crate::adjacency::AdjacencyArray::from_edge_list(g);
    writeln!(out, "{} {} 001", g.num_vertices(), g.num_edges())?;
    for v in 0..g.num_vertices() as u32 {
        let mut first = true;
        for (t, w, _) in csr.neighbors(v) {
            if !first {
                write!(out, " ")?;
            }
            write!(out, "{} {}", t + 1, (w * weight_scale).round() as i64)?;
            first = false;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Parse a METIS adjacency file (weighted, fmt `001` or `1`). Each
/// undirected edge must appear in both endpoint lines; duplicates collapse.
pub fn read_metis(input: impl BufRead, weight_scale: f64) -> std::io::Result<EdgeList> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut lines = input.lines();
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break t.to_string();
                }
            }
            None => return Err(bad("missing METIS header")),
        }
    };
    let mut tok = header.split_whitespace();
    let n: usize = tok
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("header missing n"))?;
    let m: usize = tok
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("header missing m"))?;
    match tok.next() {
        None | Some("001") | Some("1") => {}
        Some(other) => return Err(bad(&format!("unsupported METIS fmt {other:?}"))),
    }

    let mut triples: Vec<(u32, u32, f64)> = Vec::with_capacity(m);
    let mut v = 0u32;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.starts_with('%') {
            continue;
        }
        if v as usize >= n {
            if t.is_empty() {
                continue;
            }
            return Err(bad("more adjacency lines than vertices"));
        }
        let mut tok = t.split_whitespace();
        while let Some(nbr) = tok.next() {
            let u: u32 = nbr.parse().map_err(|_| bad("bad neighbor id"))?;
            let w: i64 = tok
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("neighbor missing weight"))?;
            if u == 0 || u as usize > n {
                return Err(bad("neighbor id out of range (1-indexed)"));
            }
            // Keep each undirected edge once (from its lower endpoint).
            if v < u - 1 {
                triples.push((v, u - 1, w as f64 / weight_scale));
            }
        }
        v += 1;
    }
    if (v as usize) != n {
        return Err(bad(&format!("expected {n} adjacency lines, got {v}")));
    }
    if triples.len() != m {
        return Err(bad(&format!(
            "header declared {m} edges, found {}",
            triples.len()
        )));
    }
    Ok(EdgeList::from_triples(n, triples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_graph, GeneratorConfig};

    #[test]
    fn roundtrip_preserves_graph() {
        let g = random_graph(&GeneratorConfig::with_seed(12), 40, 90);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let back = read_dimacs(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "c hello\n\np sp 3 2\na 1 2 0.5\nc mid comment\na 2 3 1.5\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge(1).w, 1.5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(
            read_dimacs("a 1 2 0.5\n".as_bytes()).is_err(),
            "missing p line"
        );
        assert!(
            read_dimacs("p sp 3 1\n".as_bytes()).is_err(),
            "edge count mismatch"
        );
        assert!(
            read_dimacs("p sp 3 1\na 0 2 1.0\n".as_bytes()).is_err(),
            "0-indexed vertex"
        );
        assert!(
            read_dimacs("q sp 3 1\n".as_bytes()).is_err(),
            "unknown line kind"
        );
        assert!(
            read_dimacs("p sp 3 1\na 1 2\n".as_bytes()).is_err(),
            "missing weight"
        );
    }

    #[test]
    fn metis_roundtrip_with_integer_weights() {
        // Weights that are multiples of 1/1000 survive the integer scaling.
        let base = random_graph(&GeneratorConfig::with_seed(21), 30, 80);
        let triples: Vec<(u32, u32, f64)> = base
            .edges()
            .iter()
            .map(|e| (e.u, e.v, (e.w * 1000.0).round() / 1000.0))
            .collect();
        let g = EdgeList::from_triples(30, triples);
        let mut buf = Vec::new();
        write_metis(&g, 1000.0, &mut buf).unwrap();
        let back = read_metis(&buf[..], 1000.0).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        // Edge sets match as (min, max, weight) triples.
        let canon = |g: &EdgeList| {
            let mut v: Vec<(u32, u32, u64)> = g
                .edges()
                .iter()
                .map(|e| (e.u.min(e.v), e.u.max(e.v), e.w.to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(canon(&g), canon(&back));
    }

    #[test]
    fn metis_parses_comments_and_rejects_garbage() {
        let text = "% comment\n3 2 001\n2 5 3 7\n1 5\n1 7\n";
        let g = read_metis(text.as_bytes(), 1.0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(
            read_metis("3 2 011\n".as_bytes(), 1.0).is_err(),
            "vertex weights unsupported"
        );
        assert!(read_metis("".as_bytes(), 1.0).is_err(), "empty file");
        assert!(
            read_metis("2 1 001\n2 5\n1 5\n3 1\n".as_bytes(), 1.0).is_err(),
            "too many lines"
        );
        assert!(
            read_metis("2 1 001\n0 5\n1 5\n".as_bytes(), 1.0).is_err(),
            "0-indexed neighbor"
        );
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = EdgeList::from_triples(4, vec![]);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let back = read_dimacs(&buf[..]).unwrap();
        assert_eq!(back.num_vertices(), 4);
        assert_eq!(back.num_edges(), 0);
    }
}
